package query

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/maxent"
	"repro/internal/shard"
)

const windowTestEpoch = 1_700_000_000

// windowedFixture builds a windowed store fed by a manually advanced clock:
// `steps` pane transitions of `perPane` exponential observations per key,
// with a latency spike injected into panes [spikeLo, spikeHi) of every
// *.web key.
func windowedFixture(t *testing.T, paneWidth time.Duration, retention, steps, perPane int) (*Engine, *shard.Store, *time.Time) {
	t.Helper()
	now := time.Unix(windowTestEpoch, 0)
	store := shard.New(
		shard.WithShards(4),
		shard.WithWindow(paneWidth, retention),
		shard.WithClock(func() time.Time { return now }),
	)
	rng := rand.New(rand.NewPCG(41, 43))
	for s := 0; s < steps; s++ {
		if s > 0 {
			now = now.Add(paneWidth) // stay inside the last data pane at the end
		}
		spike := s >= steps-6 && s < steps-3
		for _, key := range []string{"us.web", "us.api", "eu.web"} {
			for i := 0; i < perPane; i++ {
				v := 10 + rng.ExpFloat64()*20
				if spike && key == "us.web" && rng.Float64() < 0.5 {
					v = 500 + rng.ExpFloat64()*50
				}
				store.Add(key, v)
			}
		}
	}
	return NewEngine(store, Config{}), store, &now
}

func windowSubquery(sel Selection, aggs ...Aggregation) *Request {
	if len(aggs) == 0 {
		aggs = []Aggregation{{Op: OpQuantiles, Phis: []float64{0.5, 0.99}}}
	}
	return &Request{Queries: []Subquery{{Select: sel, Aggregations: aggs}}}
}

// Tolerances against the full re-merge oracle. The rollup itself — counts,
// moments — must match to 1e-9 (turnstile Sub/Merge only reassociates the
// same float additions). Solved quantiles sit behind the maximum-entropy
// solver, which amplifies last-ulp moment differences through its own
// convergence tolerance, so they get an estimator-level bound.
const (
	rollupTol   = 1e-9
	quantileTol = 1e-6
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(1, math.Abs(want))
}

// oracleQuantile estimates phi on a full re-merge of panes[a:b] using the
// same estimator policy as the engine.
func oracleQuantile(t *testing.T, panes []*core.Sketch, a, b int, phi float64) float64 {
	t.Helper()
	sk := core.New(panes[0].K)
	for _, p := range panes[a:b] {
		if err := sk.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	q, err := shard.QuantileOf(sk, phi, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// rawPanes extracts the moments view of a pane series (test helper).
func rawPanes(t *testing.T, ps *shard.PaneSeries) []*core.Sketch {
	t.Helper()
	raws, ok := ps.MomentsPanes()
	if !ok {
		t.Fatal("pane series is not moments-backed")
	}
	return raws
}

func execOne(t *testing.T, e *Engine, req *Request) Result {
	t.Helper()
	resp, qerr := e.Execute(context.Background(), req)
	if qerr != nil {
		t.Fatalf("request error: %v", qerr)
	}
	return resp.Results[0]
}

func TestWindowValidation(t *testing.T) {
	prefix := ""
	one := 1
	lo, hi := 5.0, 10.0
	cases := []struct {
		name string
		sel  Selection
	}{
		{"window+group_by", Selection{Prefix: &prefix, GroupBy: &one, Window: &WindowSpec{Last: 2}}},
		{"negative last", Selection{Key: "k", Window: &WindowSpec{Last: -1}}},
		{"negative step", Selection{Key: "k", Window: &WindowSpec{Last: 2, Step: -1}}},
		{"step without last", Selection{Key: "k", Window: &WindowSpec{Step: 2}}},
		{"half range", Selection{Key: "k", Window: &WindowSpec{StartUnix: &lo}}},
		{"inverted range", Selection{Key: "k", Window: &WindowSpec{StartUnix: &hi, EndUnix: &lo}}},
	}
	e, _, _ := windowedFixture(t, time.Second, 4, 2, 5)
	for _, tc := range cases {
		res := execOne(t, e, windowSubquery(tc.sel))
		if res.Error == nil || res.Error.Code != CodeInvalid {
			t.Errorf("%s: error = %v, want %s", tc.name, res.Error, CodeInvalid)
		}
	}
}

func TestWindowOnTimelessStore(t *testing.T) {
	store := shard.New(shard.WithShards(2))
	store.Add("k", 1)
	e := NewEngine(store, Config{})
	for _, sel := range []Selection{
		{Key: "k", Window: &WindowSpec{Last: 2}},
		{Key: "k", Window: &WindowSpec{}},
	} {
		res := execOne(t, e, windowSubquery(sel))
		if res.Error == nil || res.Error.Code != CodeInvalid {
			t.Errorf("window on timeless store: error = %v, want %s", res.Error, CodeInvalid)
		}
	}
}

func TestWindowNotFound(t *testing.T) {
	e, _, _ := windowedFixture(t, time.Second, 8, 4, 10)
	res := execOne(t, e, windowSubquery(Selection{Key: "absent", Window: &WindowSpec{Last: 2}}))
	if res.Error == nil || res.Error.Code != CodeNotFound {
		t.Errorf("missing key: error = %v, want %s", res.Error, CodeNotFound)
	}
	res = execOne(t, e, windowSubquery(Selection{Key: "absent", Window: &WindowSpec{}}))
	if res.Error == nil || res.Error.Code != CodeNotFound {
		t.Errorf("missing key via retained path: error = %v, want %s", res.Error, CodeNotFound)
	}
}

func TestWindowTrailingMatchesOracle(t *testing.T) {
	e, store, _ := windowedFixture(t, time.Second, 16, 16, 80)
	ps, err := store.Panes("us.web")
	if err != nil {
		t.Fatal(err)
	}
	for _, last := range []int{1, 4, 16, 100} {
		res := execOne(t, e, windowSubquery(Selection{Key: "us.web", Window: &WindowSpec{Last: last}}))
		if res.Error != nil {
			t.Fatalf("last=%d: %v", last, res.Error)
		}
		if len(res.Groups) != 1 {
			t.Fatalf("last=%d: %d groups, want 1", last, len(res.Groups))
		}
		g := res.Groups[0]
		width := min(last, len(ps.Panes))
		want := oracleQuantile(t, rawPanes(t, ps), len(ps.Panes)-width, len(ps.Panes), 0.99)
		got := g.Aggregations[0].Quantiles[1].Value
		if d := relErr(got, want); d > quantileTol {
			t.Errorf("last=%d: p99 = %v, oracle %v (rel diff %g)", last, got, want, d)
		}
		if g.Window == nil || g.Window.Panes != width {
			t.Errorf("last=%d: window meta %+v, want %d panes", last, g.Window, width)
		}
	}
}

func TestWindowRetainedFastPathMatchesOracle(t *testing.T) {
	e, store, _ := windowedFixture(t, time.Second, 8, 20, 60)
	// Whole-ring window (no last, no range): served from the rolling
	// turnstile-maintained retained sketch — pin it to a full re-merge of
	// the pane series after 20 transitions (12 turnstile expiries).
	for _, sel := range []Selection{
		{Key: "us.web", Window: &WindowSpec{}},
		{Prefix: ptr("us."), Window: &WindowSpec{}},
	} {
		res := execOne(t, e, windowSubquery(sel))
		if res.Error != nil {
			t.Fatal(res.Error)
		}
		var ps *shard.PaneSeries
		var err error
		if sel.Key != "" {
			ps, err = store.Panes(sel.Key)
		} else {
			ps, err = store.PanesPrefix(context.Background(), *sel.Prefix)
		}
		if err != nil {
			t.Fatal(err)
		}
		want := oracleQuantile(t, rawPanes(t, ps), 0, len(ps.Panes), 0.99)
		got := res.Groups[0].Aggregations[0].Quantiles[1].Value
		if d := relErr(got, want); d > quantileTol {
			t.Errorf("retained fast path p99 = %v, oracle %v (rel diff %g)", got, want, d)
		}
		if res.Groups[0].Window == nil || res.Groups[0].Window.Panes != 8 {
			t.Errorf("retained window meta = %+v, want whole 8-pane ring", res.Groups[0].Window)
		}
		if res.Groups[0].Keys != ps.Keys {
			t.Errorf("keys = %d, want %d", res.Groups[0].Keys, ps.Keys)
		}
	}
}

func TestWindowSlidingMatchesOracle(t *testing.T) {
	e, store, _ := windowedFixture(t, time.Second, 32, 32, 60)
	for _, tc := range []struct{ width, step int }{{4, 1}, {8, 2}, {6, 6}, {5, 9}} {
		sel := Selection{Prefix: ptr("us."), Window: &WindowSpec{Last: tc.width, Step: tc.step}}
		res := execOne(t, e, windowSubquery(sel,
			Aggregation{Op: OpStats},
			Aggregation{Op: OpQuantiles, Phis: []float64{0.5, 0.99}},
		))
		if res.Error != nil {
			t.Fatalf("width=%d step=%d: %v", tc.width, tc.step, res.Error)
		}
		ps, err := store.PanesPrefix(context.Background(), "us.")
		if err != nil {
			t.Fatal(err)
		}
		wantPositions := (len(ps.Panes)-tc.width)/tc.step + 1
		if len(res.Groups) != wantPositions {
			t.Fatalf("width=%d step=%d: %d groups, want %d", tc.width, tc.step, len(res.Groups), wantPositions)
		}
		raws := rawPanes(t, ps)
		for gi, g := range res.Groups {
			a := gi * tc.step
			oracle := core.New(raws[0].K)
			for _, p := range raws[a : a+tc.width] {
				if err := oracle.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			// The rollup itself: count exact, closed-form moments to 1e-9.
			st := g.Aggregations[0].Stats
			if g.Count != oracle.Count || st.Count != oracle.Count {
				t.Fatalf("width=%d step=%d pos=%d: count = %v, oracle %v", tc.width, tc.step, gi, g.Count, oracle.Count)
			}
			if st.Min != oracle.Min || st.Max != oracle.Max {
				t.Errorf("width=%d step=%d pos=%d: range [%v,%v], oracle [%v,%v]",
					tc.width, tc.step, gi, st.Min, st.Max, oracle.Min, oracle.Max)
			}
			if d := relErr(st.Mean, oracle.Mean()); d > rollupTol {
				t.Errorf("width=%d step=%d pos=%d: mean = %v, oracle %v (rel diff %g)",
					tc.width, tc.step, gi, st.Mean, oracle.Mean(), d)
			}
			// The solved estimate on top of it.
			wantQ, err := shard.QuantileOf(oracle, 0.99, maxent.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := g.Aggregations[1].Quantiles[1].Value
			if d := relErr(got, wantQ); d > quantileTol {
				t.Errorf("width=%d step=%d pos=%d: p99 = %v, oracle %v (rel diff %g)",
					tc.width, tc.step, gi, got, wantQ, d)
			}
			wantStart := float64(ps.PaneStart(a).UnixNano()) / 1e9
			if g.Window == nil || g.Window.StartUnix != wantStart {
				t.Errorf("width=%d step=%d pos=%d: window %+v, want start %v",
					tc.width, tc.step, gi, g.Window, wantStart)
			}
		}
	}
}

func TestWindowSlidingThresholdMatchesScan(t *testing.T) {
	// The spike sits in the last panes of the fixture; a sliding threshold
	// scan over us.web must flag exactly the windows a per-position
	// re-merge plus the same cascade flags.
	e, store, _ := windowedFixture(t, time.Second, 24, 24, 100)
	thresh := 400.0
	sel := Selection{Key: "us.web", Window: &WindowSpec{Last: 4, Step: 1}}
	res := execOne(t, e, windowSubquery(sel, Aggregation{Op: OpThreshold, T: &thresh, Phi: ptrF(0.95)}))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	ps, err := store.Panes("us.web")
	if err != nil {
		t.Fatal(err)
	}
	var hot, wantHot []int
	for gi, g := range res.Groups {
		if g.Aggregations[0].Threshold.Above {
			hot = append(hot, gi)
		}
		sk := core.New(rawPanes(t, ps)[0].K)
		for _, p := range rawPanes(t, ps)[gi : gi+4] {
			if err := sk.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		q, err := shard.QuantileOf(sk, 0.95, maxent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if q > thresh {
			wantHot = append(wantHot, gi)
		}
	}
	if len(wantHot) == 0 {
		t.Fatal("vacuous: oracle flags no windows")
	}
	if len(hot) != len(wantHot) {
		t.Fatalf("hot windows %v, oracle %v", hot, wantHot)
	}
	for i := range hot {
		if hot[i] != wantHot[i] {
			t.Fatalf("hot windows %v, oracle %v", hot, wantHot)
		}
	}
}

func TestWindowExplicitRange(t *testing.T) {
	e, store, _ := windowedFixture(t, time.Second, 16, 16, 40)
	ps, err := store.Panes("us.api")
	if err != nil {
		t.Fatal(err)
	}
	// Panes 4..10 of the series, by wall-clock range.
	start := float64(ps.PaneStart(4).Unix())
	end := float64(ps.PaneStart(10).Unix())
	sel := Selection{Key: "us.api", Window: &WindowSpec{StartUnix: &start, EndUnix: &end}}
	res := execOne(t, e, windowSubquery(sel))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	g := res.Groups[0]
	if g.Window.Panes != 6 || g.Window.StartUnix != start || g.Window.EndUnix != end {
		t.Fatalf("window meta %+v, want [%v,%v) over 6 panes", g.Window, start, end)
	}
	want := oracleQuantile(t, rawPanes(t, ps), 4, 10, 0.99)
	got := g.Aggregations[0].Quantiles[1].Value
	if d := relErr(got, want); d > quantileTol {
		t.Errorf("range window p99 = %v, oracle %v", got, want)
	}

	// A range entirely before the retained ring finds nothing.
	past := float64(windowTestEpoch - 10_000)
	pastEnd := past + 5
	res = execOne(t, e, windowSubquery(Selection{
		Key: "us.api", Window: &WindowSpec{StartUnix: &past, EndUnix: &pastEnd},
	}))
	if res.Error == nil || res.Error.Code != CodeNotFound {
		t.Errorf("out-of-ring range: error = %v, want %s", res.Error, CodeNotFound)
	}
}

func TestWindowTooManyPositions(t *testing.T) {
	now := time.Unix(windowTestEpoch, 0)
	store := shard.New(
		shard.WithShards(2),
		shard.WithWindow(time.Second, 2048),
		shard.WithClock(func() time.Time { return now }),
	)
	store.Add("k", 1)
	e := NewEngine(store, Config{})
	res := execOne(t, e, windowSubquery(Selection{Key: "k", Window: &WindowSpec{Last: 1, Step: 1}}))
	if res.Error == nil || res.Error.Code != CodeTooLarge {
		t.Errorf("2048 positions: error = %v, want %s", res.Error, CodeTooLarge)
	}
}

func TestWindowEmptyPositionsSkipped(t *testing.T) {
	now := time.Unix(windowTestEpoch, 0)
	store := shard.New(
		shard.WithShards(2),
		shard.WithWindow(time.Second, 8),
		shard.WithClock(func() time.Time { return now }),
	)
	// Data only in the newest pane: sliding width-2 windows over the ring
	// yield results only where a pane has data.
	store.Add("k", 5)
	store.Add("k", 7)
	e := NewEngine(store, Config{})
	res := execOne(t, e, windowSubquery(
		Selection{Key: "k", Window: &WindowSpec{Last: 2, Step: 1}},
		Aggregation{Op: OpStats},
	))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("%d groups, want only the populated position", len(res.Groups))
	}
	if c := res.Groups[0].Count; c != 2 {
		t.Errorf("count = %v, want 2", c)
	}
}

func TestWindowSelectionKeyDedup(t *testing.T) {
	p := ""
	a := Selection{Key: "k", Window: &WindowSpec{Last: 4, Step: 1}}
	b := Selection{Key: "k", Window: &WindowSpec{Last: 4, Step: 1}}
	if selectionKey(&a) != selectionKey(&b) {
		t.Error("identical window selections did not dedup")
	}
	variants := []Selection{
		{Key: "k"},
		{Key: "k", Window: &WindowSpec{}},
		{Key: "k", Window: &WindowSpec{Last: 4}},
		{Key: "k", Window: &WindowSpec{Last: 4, Step: 2}},
		{Key: "k", Window: &WindowSpec{Last: 4, Step: 1, StartUnix: ptrF(1), EndUnix: ptrF(9)}},
		{Prefix: &p, Window: &WindowSpec{Last: 4, Step: 1}},
	}
	seen := map[string]int{}
	for i, v := range variants {
		k := selectionKey(&v)
		if j, dup := seen[k]; dup {
			t.Errorf("selections %d and %d collide: %q", j, i, k)
		}
		seen[k] = i
	}

	// Keys are arbitrary bytes: one that embeds the window discriminator
	// must not collide with the windowed selection of the plain key.
	evil := Selection{Key: "us.web\x00w1,0"}
	windowed := Selection{Key: "us.web", Window: &WindowSpec{Last: 1}}
	if selectionKey(&evil) == selectionKey(&windowed) {
		t.Error("crafted key collides with a windowed selection")
	}
}

func ptr(s string) *string    { return &s }
func ptrF(f float64) *float64 { return &f }
