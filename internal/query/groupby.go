package query

import (
	"fmt"
	"strings"

	"repro/internal/cube"
	"repro/internal/shard"
	"repro/internal/sketch"
)

// groupBySegment materializes the matched summaries into an ephemeral
// internal/cube data cube whose dimensions are the key's
// separator-delimited segments, then rolls them up grouped by the requested
// segment with GroupByCoords. Each group carries the merged rollup of every
// key sharing that segment value; its Keys counts those matched keys (not
// cube cells — distinct keys can collapse into one cell when segment
// padding makes their coordinates coincide). The cube is summary-agnostic,
// so the same path serves every backend.
func (e *Engine) groupBySegment(matches []shard.Keyed, level int) ([]*group, *Error) {
	c, labels, err := e.buildCube(matches)
	if err != nil {
		return nil, mergeError("building rollup cube", err)
	}
	if level >= len(labels) {
		return nil, Errorf(CodeInvalid, "group_by must be a key-segment index in [0,%d)", len(labels))
	}
	cubeGroups, err := c.GroupByCoords([]int{level})
	if err != nil {
		return nil, mergeError("rollup", err)
	}
	keysPerLabel := make(map[string]int, len(cubeGroups))
	for _, m := range matches {
		segs := strings.Split(m.Key, e.sep)
		seg := ""
		if level < len(segs) {
			seg = segs[level]
		}
		keysPerLabel[seg]++
	}
	out := make([]*group, len(cubeGroups))
	for i, g := range cubeGroups {
		label := labels[level][g.Coords[0]]
		out[i] = newGroup(g.Summary.(sketch.Serving), keysPerLabel[label])
		out[i].label = label
	}
	return out, nil
}

// buildCube materializes the matched summaries into a data cube whose
// dimensions are the key segments (split on the engine's separator; short
// keys pad with ""). It returns the cube and, per dimension, the segment
// label for each coordinate id.
func (e *Engine) buildCube(matches []shard.Keyed) (*cube.Cube, [][]string, error) {
	depth := 1
	split := make([][]string, len(matches))
	for i, m := range matches {
		split[i] = strings.Split(m.Key, e.sep)
		if len(split[i]) > depth {
			depth = len(split[i])
		}
	}

	ids := make([]map[string]int, depth)
	labels := make([][]string, depth)
	for l := range ids {
		ids[l] = make(map[string]int)
	}
	coordsOf := func(segs []string) []int {
		coords := make([]int, depth)
		for l := 0; l < depth; l++ {
			seg := ""
			if l < len(segs) {
				seg = segs[l]
			}
			id, ok := ids[l][seg]
			if !ok {
				id = len(labels[l])
				ids[l][seg] = id
				labels[l] = append(labels[l], seg)
			}
			coords[l] = id
		}
		return coords
	}
	allCoords := make([][]int, len(matches))
	for i := range matches {
		allCoords[i] = coordsOf(split[i])
	}

	schema := cube.Schema{Dims: make([]string, depth), Card: make([]int, depth)}
	for l := 0; l < depth; l++ {
		schema.Dims[l] = fmt.Sprintf("seg%d", l)
		schema.Card[l] = len(labels[l])
	}
	c, err := cube.New(schema, func() sketch.Summary { return e.backend.New() })
	if err != nil {
		return nil, nil, err
	}
	for i, m := range matches {
		// The cube's per-cell value sum is only derivable from moment
		// structure; other backends ingest with sum 0 (QuerySum is not on
		// the serving path).
		sum := 0.0
		if raw := sketch.RawMoments(m.Summary); raw != nil && !raw.IsEmpty() {
			sum = raw.Pow[0]
		}
		if err := c.IngestSummary(allCoords[i], m.Summary, sum, m.Summary.Count()); err != nil {
			return nil, nil, err
		}
	}
	return c, labels, nil
}
