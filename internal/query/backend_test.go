package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/sketch"
)

// backendFixture builds an engine over a non-moments store with a known
// sample per key.
func backendFixture(t *testing.T, b sketch.Backend) (*Engine, map[string][]float64) {
	t.Helper()
	store := shard.New(shard.WithShards(4), shard.WithBackend(b))
	rng := rand.New(rand.NewPCG(71, 72))
	values := map[string][]float64{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("us.svc%d", i%3)
		v := math.Exp(rng.NormFloat64())
		store.Add(key, v)
		values[key] = append(values[key], v)
	}
	for _, data := range values {
		sort.Float64s(data)
	}
	return NewEngine(store, Config{}), values
}

func sampleRank(sorted []float64, x float64) float64 {
	return float64(sort.SearchFloat64s(sorted, x)) / float64(len(sorted))
}

func ptrInt(i int) *int { return &i }

// TestBackendQuantilesEndToEnd: key, prefix and group-by quantile
// selections on non-moments backends must answer near the exact sample and
// tag every group with the backend name.
func TestBackendQuantilesEndToEnd(t *testing.T) {
	for _, b := range []sketch.Backend{sketch.Merge12Backend(64), sketch.TDigestBackend(100)} {
		t.Run(b.Name, func(t *testing.T) {
			e, values := backendFixture(t, b)

			// Exact key.
			res := execOne(t, e, &Request{Queries: []Subquery{{
				Select:       Selection{Key: "us.svc0"},
				Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.5, 0.99}}},
			}}})
			if res.Error != nil {
				t.Fatal(res.Error)
			}
			g := res.Groups[0]
			if g.Backend != b.Name {
				t.Errorf("group backend = %q, want %q", g.Backend, b.Name)
			}
			if g.Count != float64(len(values["us.svc0"])) {
				t.Errorf("count = %v, want %d", g.Count, len(values["us.svc0"]))
			}
			for _, qp := range g.Aggregations[0].Quantiles {
				if r := sampleRank(values["us.svc0"], qp.Value); math.Abs(r-qp.Q) > 0.06 {
					t.Errorf("q(%v) = %v has sample rank %v", qp.Q, qp.Value, r)
				}
			}

			// Prefix rollup.
			var all []float64
			for _, data := range values {
				all = append(all, data...)
			}
			sort.Float64s(all)
			res = execOne(t, e, &Request{Queries: []Subquery{{
				Select:       Selection{Prefix: ptr("us.")},
				Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.9}}},
			}}})
			if res.Error != nil {
				t.Fatal(res.Error)
			}
			if res.Groups[0].Keys != 3 {
				t.Errorf("rollup keys = %d, want 3", res.Groups[0].Keys)
			}
			q := res.Groups[0].Aggregations[0].Quantiles[0].Value
			if r := sampleRank(all, q); math.Abs(r-0.9) > 0.06 {
				t.Errorf("rollup q(0.9) = %v has sample rank %v", q, r)
			}

			// Group-by through the summary-agnostic cube.
			res = execOne(t, e, &Request{Queries: []Subquery{{
				Select:       Selection{Prefix: ptr("us."), GroupBy: ptrInt(1)},
				Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.5}}},
			}}})
			if res.Error != nil {
				t.Fatal(res.Error)
			}
			if len(res.Groups) != 3 {
				t.Fatalf("group_by produced %d groups, want 3", len(res.Groups))
			}
			for _, g := range res.Groups {
				data := values["us."+g.Group]
				if g.Count != float64(len(data)) {
					t.Errorf("group %s: count %v, want %d", g.Group, g.Count, len(data))
				}
				med := g.Aggregations[0].Quantiles[0].Value
				if r := sampleRank(data, med); math.Abs(r-0.5) > 0.06 {
					t.Errorf("group %s: median %v has sample rank %v", g.Group, med, r)
				}
			}
		})
	}
}

// TestBackendThresholdDirect: thresholds on non-moments backends resolve by
// direct quantile comparison, stage "Direct".
func TestBackendThresholdDirect(t *testing.T) {
	e, values := backendFixture(t, sketch.TDigestBackend(100))
	data := values["us.svc1"]
	median := data[len(data)/2]
	for _, tc := range []struct {
		t     float64
		above bool
	}{{median * 100, false}, {data[0] / 2, true}} {
		th := tc.t
		res := execOne(t, e, &Request{Queries: []Subquery{{
			Select:       Selection{Key: "us.svc1"},
			Aggregations: []Aggregation{{Op: OpThreshold, T: &th, Phi: ptrF(0.5)}},
		}}})
		if res.Error != nil {
			t.Fatal(res.Error)
		}
		got := res.Groups[0].Aggregations[0].Threshold
		if got.Above != tc.above || got.Stage != "Direct" {
			t.Errorf("threshold t=%v: above=%v stage=%q, want above=%v stage=Direct", tc.t, got.Above, got.Stage, tc.above)
		}
	}
}

// TestBackendUnsupportedOps: aggregations needing moment structure must be
// rejected before any data work with the typed backend_unsupported code —
// and the error must map onto HTTP 400.
func TestBackendUnsupportedOps(t *testing.T) {
	e, _ := backendFixture(t, sketch.Merge12Backend(64))
	one := 1.0
	for _, agg := range []Aggregation{
		{Op: OpStats},
		{Op: OpCDF, Xs: []float64{1}},
		{Op: OpRankBounds, Xs: []float64{1}},
		{Op: OpHistogram, Buckets: 4},
	} {
		res := execOne(t, e, &Request{Queries: []Subquery{{
			Select:       Selection{Key: "us.svc0"},
			Aggregations: []Aggregation{agg},
		}}})
		if res.Error == nil || res.Error.Code != CodeBackendUnsupported {
			t.Errorf("op %s: error = %v, want %s", agg.Op, res.Error, CodeBackendUnsupported)
		}
		if res.Error != nil && res.Error.HTTPStatus() != http.StatusBadRequest {
			t.Errorf("op %s: HTTP status %d, want 400", agg.Op, res.Error.HTTPStatus())
		}
	}
	// A mixed batch isolates the failure: the supported subquery still runs.
	resp, qerr := e.Execute(context.Background(), &Request{Queries: []Subquery{
		{Select: Selection{Key: "us.svc0"}, Aggregations: []Aggregation{{Op: OpStats}}},
		{Select: Selection{Key: "us.svc0"}, Aggregations: []Aggregation{{Op: OpQuantiles}}},
		{Select: Selection{Key: "us.svc0"}, Aggregations: []Aggregation{{Op: OpThreshold, T: &one}}},
	}})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if resp.Results[0].Error == nil || resp.Results[0].Error.Code != CodeBackendUnsupported {
		t.Errorf("stats subquery: %v", resp.Results[0].Error)
	}
	if resp.Results[1].Error != nil || resp.Results[2].Error != nil {
		t.Errorf("supported subqueries failed: %v / %v", resp.Results[1].Error, resp.Results[2].Error)
	}
}

// TestBackendWindowSelections: windowed selections on a tdigest store —
// whole-ring retained, trailing, and sliding (the re-merge fallback) — must
// match a per-position re-merge of the same pane series exactly (t-digest
// merges are deterministic, and both sides merge the same pane clones in
// the same order).
func TestBackendWindowSelections(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	store := shard.New(
		shard.WithShards(2),
		shard.WithBackend(sketch.TDigestBackend(100)),
		shard.WithWindow(time.Second, 12),
		shard.WithClock(func() time.Time { return now }),
	)
	rng := rand.New(rand.NewPCG(81, 82))
	for step := 0; step < 12; step++ {
		if step > 0 {
			now = now.Add(time.Second)
		}
		for i := 0; i < 30; i++ {
			store.Add("us.web", 10+rng.ExpFloat64()*20)
		}
	}
	e := NewEngine(store, Config{})
	ps, err := store.Panes("us.web")
	if err != nil {
		t.Fatal(err)
	}
	oracleQ := func(a, b int, phi float64) float64 {
		sum := store.Backend().New()
		for _, p := range ps.Panes[a:b] {
			if err := sum.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		return sum.Quantile(phi)
	}

	// Trailing window.
	res := execOne(t, e, windowSubquery(Selection{Key: "us.web", Window: &WindowSpec{Last: 4}}))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	if got, want := res.Groups[0].Aggregations[0].Quantiles[1].Value, oracleQ(8, 12, 0.99); got != want {
		t.Errorf("trailing window p99 = %v, oracle %v", got, want)
	}
	if res.Groups[0].Backend != "tdigest" {
		t.Errorf("window group backend = %q", res.Groups[0].Backend)
	}

	// Whole-ring retained fast path: count must be exact.
	res = execOne(t, e, windowSubquery(Selection{Key: "us.web", Window: &WindowSpec{}}))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	var wantCount float64
	for _, p := range ps.Panes {
		wantCount += p.Count()
	}
	if res.Groups[0].Count != wantCount {
		t.Errorf("retained count = %v, want %v", res.Groups[0].Count, wantCount)
	}

	// Sliding windows: the re-merge fallback, one group per position.
	res = execOne(t, e, windowSubquery(Selection{Key: "us.web", Window: &WindowSpec{Last: 4, Step: 2}}))
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	wantPositions := (12-4)/2 + 1
	if len(res.Groups) != wantPositions {
		t.Fatalf("%d sliding groups, want %d", len(res.Groups), wantPositions)
	}
	for gi, g := range res.Groups {
		a := gi * 2
		if got, want := g.Aggregations[0].Quantiles[0].Value, oracleQ(a, a+4, 0.5); got != want {
			t.Errorf("position %d: median %v, oracle %v", gi, got, want)
		}
	}
}

// TestMergeErrorMapsTypeMismatch: a cross-backend merge error surfacing
// from any rollup path must map onto the typed backend_unsupported envelope
// rather than a generic internal error. (A uniformly configured store can't
// produce one — this pins the defense-in-depth mapping.)
func TestMergeErrorMapsTypeMismatch(t *testing.T) {
	err := mergeError("merging prefix \"us.\"", sketch.ErrTypeMismatch)
	if err.Code != CodeBackendUnsupported {
		t.Errorf("ErrTypeMismatch mapped to %q, want %q", err.Code, CodeBackendUnsupported)
	}
	if !strings.Contains(err.Message, "cross-backend merge") {
		t.Errorf("message %q does not name the cross-backend merge", err.Message)
	}
	wrapped := fmt.Errorf("cube: %w", sketch.ErrTypeMismatch)
	if got := mergeError("rollup", wrapped); got.Code != CodeBackendUnsupported {
		t.Errorf("wrapped ErrTypeMismatch mapped to %q", got.Code)
	}
	if got := mergeError("rollup", errors.New("disk on fire")); got.Code != CodeInternal {
		t.Errorf("unrelated error mapped to %q, want %q", got.Code, CodeInternal)
	}
}

// TestEvalAggDirectRejectsMomentOps: the direct evaluator (reachable via
// cached groups even if the planner is bypassed) refuses moment-structure
// ops with the typed code.
func TestEvalAggDirectRejectsMomentOps(t *testing.T) {
	e, _ := backendFixture(t, sketch.SamplingBackend(256))
	sum, ok := e.store.Summary("us.svc0")
	if !ok {
		t.Fatal("fixture key missing")
	}
	g := newGroup(sum, 1)
	if g.sk != nil {
		t.Fatal("sampling summary claims a moments view")
	}
	res := e.evalAgg(g, &Aggregation{Op: OpStats})
	if res.Error == nil || res.Error.Code != CodeBackendUnsupported {
		t.Errorf("direct stats eval: %v, want %s", res.Error, CodeBackendUnsupported)
	}
}

// TestBackendCachedGroupConcurrentReads: groups cached by the solve cache
// serve concurrent Execute calls, so backend quantile evaluation on a
// shared group must be a pure read — the t-digest's lazily buffered
// centroids are compacted at group creation precisely so this holds. Run
// under -race in CI; identical answers across goroutines pin determinism.
func TestBackendCachedGroupConcurrentReads(t *testing.T) {
	store := shard.New(shard.WithShards(2), shard.WithBackend(sketch.TDigestBackend(100)))
	// Not a multiple of the digest's 4·compression scratch buffer, so the
	// cached clone holds buffered centroids that a lazy Quantile would
	// flush — exactly the mutation the group-creation Compact must prevent.
	for i := 0; i < 4111; i++ {
		store.Add("k", float64(i%97))
	}
	req := &Request{Queries: []Subquery{{
		Select:       Selection{Key: "k"},
		Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.1, 0.5, 0.9, 0.99}}},
	}}}
	// No warm-up: the race window is the group's FIRST evaluation, when the
	// resolver caches it and a concurrent cache hit evaluates it in
	// parallel. Repeat with a fresh engine per round so -race gets many
	// shots at that window.
	for round := 0; round < 20; round++ {
		e := NewEngine(store, Config{SolveCache: 16})
		results := make([][]QuantilePoint, 8)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				resp, qerr := e.Execute(context.Background(), req)
				if qerr != nil || resp.Results[0].Error != nil {
					t.Errorf("concurrent execute: %v / %v", qerr, resp.Results[0].Error)
					return
				}
				results[w] = resp.Results[0].Groups[0].Aggregations[0].Quantiles
			}(w)
		}
		wg.Wait()
		for w := 1; w < 8; w++ {
			for qi := range results[0] {
				if results[w][qi] != results[0][qi] {
					t.Fatalf("round %d: goroutines saw different quantiles: %v vs %v", round, results[w][qi], results[0][qi])
				}
			}
		}
	}
}

// TestCacheKeyCarriesBackendFingerprint: engines over differently backed
// stores must never share solve-cache keys for the same selection.
func TestCacheKeyCarriesBackendFingerprint(t *testing.T) {
	mk := func(b sketch.Backend) *Engine {
		store := shard.New(shard.WithShards(2), shard.WithBackend(b))
		store.Add("k", 1)
		return NewEngine(store, Config{SolveCache: 16})
	}
	a := mk(sketch.TDigestBackend(100))
	bb := mk(sketch.TDigestBackend(200))
	if !strings.Contains(a.solverSig, "tdigest(c=100)") {
		t.Errorf("solver signature %q lacks the backend fingerprint", a.solverSig)
	}
	sel := Selection{Key: "k"}
	ka, kb := a.cacheKey(&sel), bb.cacheKey(&sel)
	if ka == "" || kb == "" {
		t.Fatal("cache keys not produced")
	}
	if ka == kb {
		t.Errorf("cache keys collide across backend parameters: %q", ka)
	}
}
