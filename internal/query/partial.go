package query

import (
	"context"

	"repro/internal/cascade"
	"repro/internal/encoding"
	"repro/internal/maxent"
	"repro/internal/sketch"
)

// Scatter-gather support: the node side resolves selections into marshaled
// partial aggregates (Engine.ResolvePartials), and the coordinator side
// re-evaluates aggregations over merged partials without a local store
// (Evaluator). Both reuse the engine's planning, caching and evaluation
// machinery, so a distributed answer is computed by exactly the code that
// answers single-node queries.

// Partial is one rollup of a node's partials answer: the group metadata the
// coordinator aligns across nodes plus the merged summary in the serving
// backend's own codec — the paper's O(k) mergeability is what makes this a
// small vector instead of raw data.
type Partial struct {
	// Label is the group label (group-by segment value or window start
	// instant; empty for plain key/prefix selections).
	Label string
	// Window is the wall-clock span for window selections, nil otherwise.
	Window *WindowRange
	// Keys counts the per-key sketches merged into this node's partial.
	Keys int
	// Payload is the merged summary in the backend codec
	// (sketch.Backend.Unmarshal decodes it).
	Payload []byte
}

// PartialSet is one selection's outcome on one node: an error envelope, or
// the node's partial groups.
type PartialSet struct {
	Groups []Partial
	Err    *Error
}

// ResolvePartials materializes each selection's rollups from the local
// store and marshals them in the serving backend's codec, for shipping to a
// scatter-gather coordinator. Failures are isolated per selection — a
// not_found on this shard is an ordinary outcome the coordinator interprets
// against the other shards' answers.
func (e *Engine) ResolvePartials(ctx context.Context, sels []Selection) []PartialSet {
	out := make([]PartialSet, len(sels))
	for i := range sels {
		sel := &sels[i]
		if err := sel.validate(); err != nil {
			out[i].Err = err
			continue
		}
		if err := ctx.Err(); err != nil {
			out[i].Err = ctxError(err)
			continue
		}
		groups, selErr := e.resolveCached(ctx, sel)
		if selErr != nil {
			out[i].Err = selErr
			continue
		}
		parts := make([]Partial, 0, len(groups))
		for _, g := range groups {
			payload, err := e.marshalGroup(g)
			if err != nil {
				parts = nil
				out[i].Err = err
				break
			}
			parts = append(parts, Partial{
				Label:   g.label,
				Window:  g.window,
				Keys:    g.keys,
				Payload: payload,
			})
		}
		out[i].Groups = parts
	}
	return out
}

// marshalGroup serializes one resolved rollup in the serving backend's
// codec. Moments-backed groups marshal the raw sketch view directly — a pure
// read, safe on cache-shared groups; other backends clone first because
// their codecs may compact in place.
func (e *Engine) marshalGroup(g *group) ([]byte, *Error) {
	if g.sk != nil {
		return encoding.Marshal(g.sk), nil
	}
	data, err := e.backend.Marshal(g.sum.Clone())
	if err != nil {
		return nil, Errorf(CodeBackendUnsupported, "marshaling %q partial: %v", e.backend.Name, err)
	}
	return data, nil
}

// Validate checks the subquery without touching any data — the exported
// entry point for coordinators that plan a batch before fanning it out.
func (q *Subquery) Validate() *Error { return q.validate() }

// SelectionKey canonicalizes a selection for deduplication, so a
// coordinator fans each distinct rollup out exactly once per node no matter
// how many subqueries reference it. Distinct selections never collide, even
// with crafted key bytes.
func SelectionKey(sel *Selection) string { return selectionKey(sel) }

// Evaluator answers aggregations over externally merged rollups — the
// coordinator side of scatter-gather serving. It is an Engine without a
// store: the same solver, threshold cascade, degradation policy and
// memoized max-ent solves, applied to summaries merged from shard partials
// instead of resolved locally. Safe for concurrent use.
type Evaluator struct {
	e Engine
}

// NewEvaluator wires an Evaluator for the given serving backend and solver
// options. Backend and solver must match the shard nodes' configuration —
// the fingerprint travels in the partials frame so mismatches are caught on
// decode.
func NewEvaluator(backend sketch.Backend, solver maxent.Options) *Evaluator {
	return &Evaluator{e: Engine{backend: backend, solver: solver, sep: "."}}
}

// Backend returns the serving backend the evaluator answers from.
func (ev *Evaluator) Backend() sketch.Backend { return ev.e.backend }

// ValidateOps rejects aggregations the serving backend cannot answer,
// before any fan-out work.
func (ev *Evaluator) ValidateOps(sq *Subquery) *Error { return ev.e.validateBackendOps(sq) }

// CascadeStats returns the threshold-cascade counters accumulated by
// evaluations on this evaluator.
func (ev *Evaluator) CascadeStats() cascade.Stats { return ev.e.CascadeStats() }

// MergedGroup is one rollup the coordinator assembled by merging shard
// partials: the aligned group metadata plus the merged serving summary.
type MergedGroup struct {
	Label  string
	Window *WindowRange
	Keys   int
	Sum    sketch.Serving
}

// Prepared holds merged rollups staged for evaluation: max-ent solves are
// memoized per group, and consecutive window positions are chained so each
// solve warm-starts from its neighbour's θ — exactly as on a single node.
type Prepared struct {
	groups []*group
}

// Prepare stages merged rollups for evaluation. The input order is
// preserved; for sliding-window selections pass positions oldest-first so
// warm-start chaining follows the slide.
func (ev *Evaluator) Prepare(merged []MergedGroup) *Prepared {
	groups := make([]*group, len(merged))
	var prev *group
	for i := range merged {
		mg := &merged[i]
		g := newGroup(mg.Sum, mg.Keys)
		g.label = mg.Label
		g.window = mg.Window
		if mg.Window != nil && ev.e.backend.Caps.WarmStart && prev != nil && prev.window != nil {
			g.prev = prev
		}
		groups[i] = g
		prev = g
	}
	return &Prepared{groups: groups}
}

// Evaluate answers one subquery's aggregations over the prepared rollups,
// one GroupResult per group in prepared order. Prepared groups may be
// shared across concurrent Evaluate calls.
func (ev *Evaluator) Evaluate(p *Prepared, sq *Subquery) []GroupResult {
	return ev.e.evalSubquery(p.groups, sq)
}
