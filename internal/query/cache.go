package query

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultSolveCacheSize is the solve-cache capacity servers use unless
// configured otherwise, measured in cached rollups (result groups): a
// plain key or prefix selection weighs 1, a group-by or sliding-window
// selection weighs one per group, so high-cardinality selections cannot
// blow past the configured memory bound by hiding behind one entry. A
// solved rollup is a ~200-byte sketch plus a few-KiB density, so the
// default bounds the cache to a few MiB.
const DefaultSolveCacheSize = 1024

// CacheStats is a point-in-time snapshot of the solve cache's counters,
// surfaced through Engine.CacheStats and the server's stats endpoints.
// Capacity and Groups are in rollup units (see DefaultSolveCacheSize);
// Entries counts cached selections.
type CacheStats struct {
	Enabled   bool   `json:"enabled"`
	Capacity  int    `json:"capacity"`
	Entries   int    `json:"entries"`
	Groups    int    `json:"groups"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// solveCache is a sharded, bounded LRU from version-stamped selection keys
// to resolved group sets (merged rollup sketches plus their lazily solved
// maximum-entropy densities). Keys embed the store's mutation version (see
// Engine.cacheKey), so invalidation is structural: any mutation of covered
// data changes the key and the stale entry simply ages out of the LRU.
// Cached groups are immutable apart from the sync.Once-guarded solve —
// newGroup compacts lazily buffered backends (sketch.Compactor) before a
// group can reach the cache — so one entry can serve concurrent requests.
type solveCache struct {
	shards    []cacheShard
	mask      uint64
	capacity  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu     sync.Mutex
	cap    int // weight budget (rollups)
	weight int // current total weight
	m      map[string]*list.Element
	ll     *list.List // front = most recently used
}

type cacheRecord struct {
	key    string
	groups []*group
	weight int
}

// newSolveCache builds a cache whose shard budgets sum to exactly
// `capacity` rollups, split over power-of-two shards.
func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		return nil
	}
	shards := 1
	for shards < 8 && shards < capacity {
		shards <<= 1
	}
	c := &solveCache{
		shards:   make([]cacheShard, shards),
		mask:     uint64(shards - 1),
		capacity: capacity,
	}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		c.shards[i] = cacheShard{
			cap: cap,
			m:   make(map[string]*list.Element),
			ll:  list.New(),
		}
	}
	return c
}

// fnv64aString mirrors shard's key hash for shard selection.
func fnv64aString(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *solveCache) shardFor(key string) *cacheShard {
	return &c.shards[fnv64aString(key)&c.mask]
}

// get returns the group set cached under key, promoting it to most
// recently used.
func (c *solveCache) get(key string) ([]*group, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.m[key]
	if ok {
		sh.ll.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheRecord).groups, true
}

// put inserts (or refreshes) the group set under key, evicting least
// recently used entries until the shard's rollup budget holds. A group set
// heavier than the whole shard budget is not cached at all — caching it
// would flush the shard for an entry too big to ever be joined by another.
func (c *solveCache) put(key string, groups []*group) {
	w := len(groups)
	if w < 1 {
		w = 1
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if w > sh.cap {
		sh.mu.Unlock()
		return
	}
	if el, ok := sh.m[key]; ok {
		rec := el.Value.(*cacheRecord)
		sh.weight += w - rec.weight
		rec.groups, rec.weight = groups, w
		sh.ll.MoveToFront(el)
	} else {
		sh.m[key] = sh.ll.PushFront(&cacheRecord{key: key, groups: groups, weight: w})
		sh.weight += w
	}
	evicted := uint64(0)
	for sh.weight > sh.cap {
		back := sh.ll.Back()
		rec := back.Value.(*cacheRecord)
		sh.ll.Remove(back)
		delete(sh.m, rec.key)
		sh.weight -= rec.weight
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// stats snapshots the counters.
func (c *solveCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	entries, groups := 0, 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += sh.ll.Len()
		groups += sh.weight
		sh.mu.Unlock()
	}
	return CacheStats{
		Enabled:   true,
		Capacity:  c.capacity,
		Entries:   entries,
		Groups:    groups,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
