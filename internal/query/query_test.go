package query

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

func strPtr(s string) *string { return &s }
func intPtr(i int) *int       { return &i }
func f64Ptr(f float64) *float64 {
	return &f
}

// seedStore ingests numGroups × keysPerGroup keys named g<i>.k<j>, each
// with perKey lognormal observations shifted by its group index, and
// returns the store plus the raw per-key samples.
func seedStore(t testing.TB, numGroups, keysPerGroup, perKey int) (*shard.Store, map[string][]float64) {
	t.Helper()
	store := shard.New(shard.WithShards(8))
	rng := rand.New(rand.NewPCG(42, 43))
	data := map[string][]float64{}
	for g := 0; g < numGroups; g++ {
		for k := 0; k < keysPerGroup; k++ {
			key := fmt.Sprintf("g%d.k%d", g, k)
			for i := 0; i < perKey; i++ {
				v := math.Exp(rng.NormFloat64()*0.5) + float64(g)
				store.Add(key, v)
				data[key] = append(data[key], v)
			}
		}
	}
	return store, data
}

func TestValidation(t *testing.T) {
	store, _ := seedStore(t, 1, 1, 10)
	e := NewEngine(store, Config{})

	cases := []struct {
		name string
		sq   Subquery
	}{
		{"no selection", Subquery{Aggregations: []Aggregation{{Op: OpStats}}}},
		{"key and prefix", Subquery{
			Select:       Selection{Key: "a", Prefix: strPtr("b")},
			Aggregations: []Aggregation{{Op: OpStats}},
		}},
		{"group_by without prefix", Subquery{
			Select:       Selection{Key: "a", GroupBy: intPtr(0)},
			Aggregations: []Aggregation{{Op: OpStats}},
		}},
		{"negative group_by", Subquery{
			Select:       Selection{Prefix: strPtr(""), GroupBy: intPtr(-1)},
			Aggregations: []Aggregation{{Op: OpStats}},
		}},
		{"no aggregations", Subquery{Select: Selection{Key: "g0.k0"}}},
		{"unknown op", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: "median"}},
		}},
		{"missing op", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{}},
		}},
		{"bad phi", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{1.5}}},
		}},
		{"NaN phi", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{math.NaN()}}},
		}},
		{"cdf without xs", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpCDF}},
		}},
		{"threshold without t", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpThreshold}},
		}},
		{"threshold with inf t", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpThreshold, T: f64Ptr(math.Inf(1))}},
		}},
		{"threshold bad phi", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpThreshold, T: f64Ptr(1), Phi: f64Ptr(2)}},
		}},
		{"histogram without buckets", Subquery{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpHistogram}},
		}},
	}
	for _, tc := range cases {
		resp, qerr := e.Execute(context.Background(), &Request{Queries: []Subquery{tc.sq}})
		if qerr != nil {
			t.Fatalf("%s: request-level error %v, want per-subquery error", tc.name, qerr)
		}
		res := resp.Results[0]
		if res.Error == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if res.Error.Code != CodeInvalid {
			t.Errorf("%s: code = %q, want %q", tc.name, res.Error.Code, CodeInvalid)
		}
	}

	if _, qerr := e.Execute(context.Background(), &Request{}); qerr == nil || qerr.Code != CodeInvalid {
		t.Errorf("empty request: error = %v, want %s", qerr, CodeInvalid)
	}
	if _, qerr := e.Execute(context.Background(), nil); qerr == nil || qerr.Code != CodeInvalid {
		t.Errorf("nil request: error = %v, want %s", qerr, CodeInvalid)
	}
	huge := &Request{Queries: make([]Subquery, MaxSubqueries+1)}
	if _, qerr := e.Execute(context.Background(), huge); qerr == nil || qerr.Code != CodeTooLarge {
		t.Errorf("oversized request: error = %v, want %s", qerr, CodeTooLarge)
	}
}

// TestBatchedGroupByIsolation is the acceptance scenario: a single request
// carrying well over 100 group-by and key subqueries, with invalid and
// missing-key subqueries interleaved, returns per-subquery results whose
// failures are isolated from the rest of the batch.
func TestBatchedGroupByIsolation(t *testing.T) {
	store, data := seedStore(t, 8, 4, 500)
	e := NewEngine(store, Config{})

	var req Request
	kind := make([]string, 0, 140)
	for i := 0; i < 140; i++ {
		switch {
		case i%11 == 5: // missing key
			req.Queries = append(req.Queries, Subquery{
				ID:           fmt.Sprintf("q%d", i),
				Select:       Selection{Key: fmt.Sprintf("missing%d", i)},
				Aggregations: []Aggregation{{Op: OpStats}},
			})
			kind = append(kind, "missing")
		case i%11 == 9: // invalid aggregation
			req.Queries = append(req.Queries, Subquery{
				ID:           fmt.Sprintf("q%d", i),
				Select:       Selection{Key: "g0.k0"},
				Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{-3}}},
			})
			kind = append(kind, "invalid")
		default: // group-by over one group's prefix, by key segment 1
			prefix := fmt.Sprintf("g%d.", i%8)
			req.Queries = append(req.Queries, Subquery{
				ID:     fmt.Sprintf("q%d", i),
				Select: Selection{Prefix: &prefix, GroupBy: intPtr(1)},
				Aggregations: []Aggregation{
					{Op: OpQuantiles, Phis: []float64{0.5, 0.99}},
					{Op: OpStats},
				},
			})
			kind = append(kind, "groupby")
		}
	}

	resp, qerr := e.Execute(context.Background(), &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	if len(resp.Results) != len(req.Queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(req.Queries))
	}
	for i, res := range resp.Results {
		if res.ID != fmt.Sprintf("q%d", i) {
			t.Fatalf("result %d: id %q out of order", i, res.ID)
		}
		switch kind[i] {
		case "missing":
			if res.Error == nil || res.Error.Code != CodeNotFound {
				t.Errorf("result %d: error = %v, want %s", i, res.Error, CodeNotFound)
			}
		case "invalid":
			if res.Error == nil || res.Error.Code != CodeInvalid {
				t.Errorf("result %d: error = %v, want %s", i, res.Error, CodeInvalid)
			}
		case "groupby":
			if res.Error != nil {
				t.Errorf("result %d: unexpected error %v", i, res.Error)
				continue
			}
			if len(res.Groups) != 4 {
				t.Errorf("result %d: %d groups, want 4", i, len(res.Groups))
				continue
			}
			for _, g := range res.Groups {
				key := req.Queries[i].Select.prefixString() + g.Group
				want := data[key]
				if g.Keys != 1 || g.Count != float64(len(want)) {
					t.Errorf("result %d group %q: keys/count = %d/%v, want 1/%d",
						i, g.Group, g.Keys, g.Count, len(want))
				}
				sorted := append([]float64(nil), want...)
				sort.Float64s(sorted)
				for _, qp := range g.Aggregations[0].Quantiles {
					rank := float64(sort.SearchFloat64s(sorted, qp.Value)) / float64(len(sorted))
					if math.Abs(rank-qp.Q) > 0.06 {
						t.Errorf("result %d group %q: phi=%v estimate %v has rank %v",
							i, g.Group, qp.Q, qp.Value, rank)
					}
				}
			}
		}
	}
}

// prefixString is a test helper to rebuild the full key of a group.
func (sel *Selection) prefixString() string {
	if sel.Prefix == nil {
		return ""
	}
	return *sel.Prefix
}

// TestAggregations exercises each operator against per-key oracles.
func TestAggregations(t *testing.T) {
	store, data := seedStore(t, 2, 2, 4000)
	e := NewEngine(store, Config{})
	key := "g1.k0"
	sorted := append([]float64(nil), data[key]...)
	sort.Float64s(sorted)
	n := float64(len(sorted))

	req := Request{Queries: []Subquery{{
		Select: Selection{Key: key},
		Aggregations: []Aggregation{
			{Op: OpQuantiles}, // default phis
			{Op: OpCDF, Xs: []float64{2.0}},
			{Op: OpThreshold, T: f64Ptr(1.2)}, // default phi 0.99
			{Op: OpRankBounds, Xs: []float64{2.0}},
			{Op: OpHistogram, Buckets: 8},
			{Op: OpStats},
		},
	}}}
	resp, qerr := e.Execute(context.Background(), &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	res := resp.Results[0]
	if res.Error != nil {
		t.Fatalf("subquery error: %v", res.Error)
	}
	g := res.Groups[0]

	qs := g.Aggregations[0]
	if len(qs.Quantiles) != len(DefaultPhis) {
		t.Fatalf("quantiles: %d points, want %d", len(qs.Quantiles), len(DefaultPhis))
	}
	for _, qp := range qs.Quantiles {
		rank := float64(sort.SearchFloat64s(sorted, qp.Value)) / n
		if math.Abs(rank-qp.Q) > 0.05 {
			t.Errorf("quantiles: phi=%v estimate %v has rank %v", qp.Q, qp.Value, rank)
		}
	}

	cdf := g.Aggregations[1].CDF[0]
	trueFrac := float64(sort.SearchFloat64s(sorted, 2.0)) / n
	if math.Abs(cdf.Fraction-trueFrac) > 0.05 {
		t.Errorf("cdf(2.0) = %v, true fraction %v", cdf.Fraction, trueFrac)
	}

	th := g.Aggregations[2].Threshold
	truePhi99 := sorted[int(0.99*n)]
	if th.Above != (truePhi99 > 1.2) {
		t.Errorf("threshold: above = %v, true p99 = %v vs t=1.2", th.Above, truePhi99)
	}
	if th.Stage == "?" {
		t.Errorf("threshold: unresolved stage")
	}

	rb := g.Aggregations[3].RankBounds[0]
	if trueFrac < rb.Lo-1e-9 || trueFrac > rb.Hi+1e-9 {
		t.Errorf("rank_bounds(2.0) = [%v,%v] excludes true fraction %v", rb.Lo, rb.Hi, trueFrac)
	}

	hist := g.Aggregations[4].Histogram
	if len(hist) != 8 {
		t.Fatalf("histogram: %d buckets, want 8", len(hist))
	}
	sum := 0.0
	for _, b := range hist {
		sum += b.Fraction
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("histogram fractions sum to %v, want ~1", sum)
	}

	st := g.Aggregations[5].Stats
	if st.Count != n || st.Min != sorted[0] || st.Max != sorted[len(sorted)-1] {
		t.Errorf("stats = %+v inconsistent with oracle (n=%v min=%v max=%v)",
			st, n, sorted[0], sorted[len(sorted)-1])
	}
}

// TestNotConvergedIsolation: a near-discrete key (three point masses with
// a huge dynamic range — the paper's §6.2.3 failure mode) makes the solver
// fail; cdf/histogram must error with not_converged while
// quantiles/threshold degrade to bounds, and other subqueries in the batch
// stay healthy.
func TestNotConvergedIsolation(t *testing.T) {
	store, _ := seedStore(t, 1, 1, 2000)
	points := []float64{0, 1, 1e6}
	for i := 0; i < 999; i++ {
		store.Add("flat", points[i%3])
	}
	e := NewEngine(store, Config{})

	req := Request{Queries: []Subquery{
		{
			Select: Selection{Key: "flat"},
			Aggregations: []Aggregation{
				{Op: OpCDF, Xs: []float64{5}},
				{Op: OpHistogram, Buckets: 4},
				{Op: OpQuantiles, Phis: []float64{0.5}},
				{Op: OpThreshold, T: f64Ptr(-1), Phi: f64Ptr(0.5)},
			},
		},
		{
			Select:       Selection{Key: "g0.k0"},
			Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.5}}},
		},
	}}
	resp, qerr := e.Execute(context.Background(), &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	flat := resp.Results[0]
	if flat.Error != nil {
		t.Fatalf("flat subquery error: %v", flat.Error)
	}
	aggs := flat.Groups[0].Aggregations
	for _, i := range []int{0, 1} {
		if aggs[i].Error == nil || aggs[i].Error.Code != CodeNotConverged {
			t.Errorf("agg %d (%s): error = %v, want %s", i, aggs[i].Op, aggs[i].Error, CodeNotConverged)
		}
	}
	if aggs[2].Error != nil {
		t.Errorf("quantiles errored (%v), want degraded fallback", aggs[2].Error)
	}
	if !aggs[2].Degraded {
		t.Errorf("quantiles on solver-hostile data not flagged degraded")
	}
	if v := aggs[2].Quantiles[0].Value; v < 0 || v > 1e6 {
		t.Errorf("degraded median = %v outside the data range [0, 1e6]", v)
	}
	// t below the minimum resolves in the range-filter stage regardless of
	// the solver, so the decision must be exact and not degraded.
	if th := aggs[3].Threshold; th == nil || !th.Above || th.Stage != "Simple" {
		t.Errorf("threshold below min: %+v, want above=true via Simple", th)
	}
	if aggs[3].Degraded {
		t.Errorf("range-filter threshold flagged degraded")
	}
	if resp.Results[1].Error != nil {
		t.Errorf("healthy subquery polluted: %v", resp.Results[1].Error)
	}
}

// TestGroupByKeysCountsMatchedKeys: distinct keys whose padded segment
// coordinates coincide ("a.b" and "a.b." both pad to [a, b, ""]) collapse
// into one cube cell, but GroupResult.Keys must still count the matched
// keys, not the cells.
func TestGroupByKeysCountsMatchedKeys(t *testing.T) {
	store := shard.New(shard.WithShards(4))
	store.Add("a.b", 1)
	store.Add("a.b.", 2)
	store.Add("a.c.x", 3)
	e := NewEngine(store, Config{})

	prefix := ""
	resp, qerr := e.Execute(context.Background(), &Request{Queries: []Subquery{{
		Select:       Selection{Prefix: &prefix, GroupBy: intPtr(0)},
		Aggregations: []Aggregation{{Op: OpStats}},
	}}})
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	res := resp.Results[0]
	if res.Error != nil {
		t.Fatalf("subquery error: %v", res.Error)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("%d groups, want 1 (all keys share segment 0 = \"a\")", len(res.Groups))
	}
	g := res.Groups[0]
	if g.Group != "a" || g.Keys != 3 || g.Count != 3 {
		t.Errorf("group = %q keys = %d count = %v, want a/3/3", g.Group, g.Keys, g.Count)
	}
}

// TestSelectionDedup: subqueries sharing a selection must return identical
// results (they share one merge and one memoized solve).
func TestSelectionDedup(t *testing.T) {
	store, _ := seedStore(t, 4, 4, 300)
	e := NewEngine(store, Config{})
	prefix := "g2."
	sq := Subquery{
		Select:       Selection{Prefix: &prefix},
		Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.1, 0.5, 0.9}}},
	}
	req := Request{Queries: []Subquery{sq, sq, sq}}
	resp, qerr := e.Execute(context.Background(), &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(resp.Results[0].Groups, resp.Results[i].Groups) {
			t.Fatalf("result %d differs from result 0 on the same selection", i)
		}
	}
	if resp.Results[0].Groups[0].Keys != 4 {
		t.Errorf("prefix rollup keys = %d, want 4", resp.Results[0].Groups[0].Keys)
	}
}

// TestContextDeadline: an already-expired context fails every subquery
// with deadline_exceeded rather than running the batch.
func TestContextDeadline(t *testing.T) {
	store, _ := seedStore(t, 4, 4, 100)
	e := NewEngine(store, Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	prefix := ""
	req := Request{Queries: []Subquery{
		{Select: Selection{Prefix: &prefix}, Aggregations: []Aggregation{{Op: OpStats}}},
		{Select: Selection{Key: "g0.k0"}, Aggregations: []Aggregation{{Op: OpStats}}},
	}}
	resp, qerr := e.Execute(ctx, &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	for i, res := range resp.Results {
		if res.Error == nil || res.Error.Code != CodeDeadline {
			t.Errorf("result %d: error = %v, want %s", i, res.Error, CodeDeadline)
		}
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	resp, qerr = e.Execute(canceled, &req)
	if qerr != nil {
		t.Fatalf("Execute: %v", qerr)
	}
	if resp.Results[0].Error == nil || resp.Results[0].Error.Code != CodeCanceled {
		t.Errorf("canceled ctx: error = %v, want %s", resp.Results[0].Error, CodeCanceled)
	}
}

// TestConcurrentExecuteStress runs many concurrent batched Executes (under
// -race) and checks every result against a single-threaded oracle engine:
// the parallel executor must return bit-identical results.
func TestConcurrentExecuteStress(t *testing.T) {
	store, _ := seedStore(t, 6, 5, 400)
	parallel := NewEngine(store, Config{Workers: 8})
	oracle := NewEngine(store, Config{Workers: 1})

	mkReq := func(seed int) *Request {
		var req Request
		for i := 0; i < 20; i++ {
			switch (seed + i) % 4 {
			case 0:
				req.Queries = append(req.Queries, Subquery{
					Select:       Selection{Key: fmt.Sprintf("g%d.k%d", (seed+i)%6, i%5)},
					Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.5, 0.9}}, {Op: OpStats}},
				})
			case 1:
				prefix := fmt.Sprintf("g%d.", i%6)
				req.Queries = append(req.Queries, Subquery{
					Select:       Selection{Prefix: &prefix},
					Aggregations: []Aggregation{{Op: OpQuantiles, Phis: []float64{0.99}}},
				})
			case 2:
				prefix := ""
				req.Queries = append(req.Queries, Subquery{
					Select:       Selection{Prefix: &prefix, GroupBy: intPtr(0)},
					Aggregations: []Aggregation{{Op: OpStats}, {Op: OpRankBounds, Xs: []float64{2}}},
				})
			default:
				req.Queries = append(req.Queries, Subquery{
					Select:       Selection{Key: fmt.Sprintf("missing%d", i)},
					Aggregations: []Aggregation{{Op: OpStats}},
				})
			}
		}
		return &req
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				req := mkReq(seed)
				got, qerr := parallel.Execute(context.Background(), req)
				if qerr != nil {
					errs <- fmt.Errorf("parallel Execute: %v", qerr)
					return
				}
				want, qerr := oracle.Execute(context.Background(), req)
				if qerr != nil {
					errs <- fmt.Errorf("oracle Execute: %v", qerr)
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("seed %d iter %d: parallel results diverge from single-threaded oracle", seed, iter)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
