package query

import (
	"fmt"
	"math"
	"net/http"
)

// Limits on a single request, chosen so a maximally adversarial batch stays
// bounded in both memory and compute.
const (
	// MaxSubqueries bounds the number of subqueries in one request.
	MaxSubqueries = 4096
	// MaxAggregations bounds the aggregations of one subquery.
	MaxAggregations = 32
	// MaxPoints bounds the φ values / evaluation points of one aggregation.
	MaxPoints = 256
	// MaxHistogramBuckets bounds one histogram aggregation's bucket count.
	MaxHistogramBuckets = 4096
	// MaxWindows bounds the sliding-window positions one window selection
	// may expand to (each position is one rollup with its own lazily
	// memoized solve).
	MaxWindows = 1024
)

// DefaultPhis are the quantile fractions reported when a quantiles
// aggregation names none.
var DefaultPhis = []float64{0.5, 0.9, 0.99}

// Error codes carried by the structured error envelope. HTTPStatus maps
// them onto transport status codes.
const (
	CodeInvalid      = "invalid_request"
	CodeNotFound     = "not_found"
	CodeNotConverged = "not_converged"
	CodeDeadline     = "deadline_exceeded"
	CodeCanceled     = "canceled"
	CodeTooLarge     = "too_large"
	CodeInternal     = "internal"
	// CodeBackendUnsupported marks a request the serving backend cannot
	// answer: an aggregation needing moment structure on a non-moments
	// backend, a moments-only endpoint, or a cross-backend merge.
	CodeBackendUnsupported = "backend_unsupported"
	// CodeUnavailable marks a request the node cannot currently serve
	// safely: the write-ahead log is wedged by a disk failure under the
	// fail policy, so acknowledging the write would break its durability
	// contract. Retry against a recovered node.
	CodeUnavailable = "unavailable"
	// CodePartialResult marks a scatter-gather answer computed without every
	// shard node: the coordinator's deadline or a node failure dropped some
	// partials, the reachable nodes' data was merged anyway, and Error.Nodes
	// lists the shards missing from the result.
	CodePartialResult = "partial_result"
)

// Error is the structured {code, message} envelope used for request-level,
// subquery-level and aggregation-level failures.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Nodes lists the shard nodes missing from a scatter-gather answer;
	// only set on CodePartialResult envelopes.
	Nodes []string `json:"nodes,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// HTTPStatus maps the error code onto an HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalid:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeNotConverged:
		return http.StatusUnprocessableEntity
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return http.StatusServiceUnavailable
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeBackendUnsupported:
		return http.StatusBadRequest
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodePartialResult:
		// Partial results travel alongside merged data from the reachable
		// shards — some targets answered, some did not.
		return http.StatusMultiStatus
	}
	return http.StatusInternalServerError
}

// Errorf builds an *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Aggregation operators.
const (
	OpQuantiles  = "quantiles"
	OpCDF        = "cdf"
	OpThreshold  = "threshold"
	OpRankBounds = "rank_bounds"
	OpHistogram  = "histogram"
	OpStats      = "stats"
)

// Request is a batch of independent subqueries evaluated in one round trip.
type Request struct {
	Queries []Subquery `json:"queries"`
}

// Subquery pairs one selection of the key space with the aggregations to
// evaluate over it.
type Subquery struct {
	// ID is an optional client-chosen tag echoed back on the result.
	ID     string    `json:"id,omitempty"`
	Select Selection `json:"select"`
	// Aggregations are evaluated in order against the selected data.
	Aggregations []Aggregation `json:"aggregations"`
}

// Selection picks the sketches a subquery aggregates over. Exactly one of
// Key and Prefix must be set. Prefix is a pointer so that the empty prefix
// (select every key) stays expressible.
type Selection struct {
	// Key selects a single exact key.
	Key string `json:"key,omitempty"`
	// Prefix selects every key with this prefix, merged into one rollup.
	Prefix *string `json:"prefix,omitempty"`
	// GroupBy partitions a prefix selection into one rollup per distinct
	// value of the given separator-delimited key segment (0-based). Only
	// valid together with Prefix, and not combinable with Window.
	GroupBy *int `json:"group_by,omitempty"`
	// Window restricts the selection to time panes (§7.2.2): instead of the
	// all-time sketch, the rollup covers the retained pane ring — a single
	// trailing window, an explicit [start, end) range, or a set of sliding
	// window positions. Requires a store built with time panes.
	Window *WindowSpec `json:"window,omitempty"`
}

// WindowSpec selects which time window(s) of the retained pane ring a
// subquery aggregates over. All widths are in panes (the store's configured
// pane width × count); times are unix seconds so the spec round-trips
// through JSON without timezone ambiguity.
//
// The pane universe is the explicit [StartUnix, EndUnix) range when given
// (clipped to the retained ring), otherwise the whole retained ring. Within
// it:
//
//   - Last == 0, Step == 0: one window covering the whole universe. With no
//     explicit range this is answered from the rolling turnstile-maintained
//     retained sketch in O(k), not a pane re-merge.
//   - Last > 0, Step == 0: one trailing window of the last `Last` panes.
//   - Last > 0, Step > 0: sliding windows of width Last starting at the
//     universe's oldest pane, advancing Step panes per position — evaluated
//     with turnstile Sub/Merge slides, one result group per position.
type WindowSpec struct {
	// Last is the window width in panes (0 = the whole selected range).
	Last int `json:"last,omitempty"`
	// Step slides the window by this many panes per position (0 = a single
	// window). Step > 0 requires Last > 0.
	Step int `json:"step,omitempty"`
	// StartUnix/EndUnix bound the pane universe to the wall-clock range
	// [StartUnix, EndUnix), in (possibly fractional) unix seconds. Set both
	// or neither.
	StartUnix *float64 `json:"start_unix,omitempty"`
	EndUnix   *float64 `json:"end_unix,omitempty"`
}

// WindowRange reports the wall-clock span one result group covers.
type WindowRange struct {
	// StartUnix/EndUnix bound the window, [StartUnix, EndUnix), in unix
	// seconds.
	StartUnix float64 `json:"start_unix"`
	EndUnix   float64 `json:"end_unix"`
	// Panes is the window width in panes.
	Panes int `json:"panes"`
}

// Aggregation is one typed aggregation operator. Op selects the operator;
// the remaining fields parameterize it:
//
//	quantiles:   Phis (default DefaultPhis)
//	cdf:         Xs (required)
//	threshold:   T (required), Phi (default 0.99)
//	rank_bounds: Xs (required)
//	histogram:   Buckets (required, ≥ 1)
//	stats:       no parameters
type Aggregation struct {
	Op      string    `json:"op"`
	Phis    []float64 `json:"phis,omitempty"`
	Xs      []float64 `json:"xs,omitempty"`
	T       *float64  `json:"t,omitempty"`
	Phi     *float64  `json:"phi,omitempty"`
	Buckets int       `json:"buckets,omitempty"`
}

// Response carries one Result per request subquery, in request order.
type Response struct {
	Results []Result `json:"results"`
}

// Result is the outcome of one subquery. Errors are isolated: a failed
// subquery sets Error and leaves the rest of the batch untouched.
type Result struct {
	ID    string `json:"id,omitempty"`
	Error *Error `json:"error,omitempty"`
	// Groups holds one entry per selected rollup: exactly one for key and
	// plain prefix selections, one per distinct segment value for group_by
	// selections (sorted by group label).
	Groups []GroupResult `json:"groups,omitempty"`
}

// GroupResult is one rollup's aggregation results.
type GroupResult struct {
	// Group is the grouped segment value for group_by selections, or the
	// window's RFC 3339 start instant for window selections (empty for
	// timeless key/prefix selections).
	Group string `json:"group,omitempty"`
	// Backend names the serving summary backend that produced this rollup
	// ("moments", "merge12", ...), so saved results are self-describing.
	Backend string `json:"backend,omitempty"`
	// Window is the wall-clock span this group covers; only set for window
	// selections.
	Window *WindowRange `json:"window,omitempty"`
	// Keys counts the per-key sketches merged into this rollup.
	Keys int `json:"keys"`
	// Count is the number of observations in the rollup.
	Count float64 `json:"count"`
	// Aggregations holds one result per requested aggregation, in order.
	Aggregations []AggResult `json:"aggregations"`
}

// AggResult is the outcome of one aggregation on one group. Exactly one of
// the payload fields matching Op is populated unless Error is set.
type AggResult struct {
	Op    string `json:"op"`
	Error *Error `json:"error,omitempty"`
	// Degraded reports that the maximum-entropy solver did not converge and
	// the result fell back to guaranteed moment bounds.
	Degraded   bool              `json:"degraded,omitempty"`
	Quantiles  []QuantilePoint   `json:"quantiles,omitempty"`
	CDF        []CDFPoint        `json:"cdf,omitempty"`
	Threshold  *ThresholdResult  `json:"threshold,omitempty"`
	RankBounds []RankBoundsPoint `json:"rank_bounds,omitempty"`
	Histogram  []HistogramBucket `json:"histogram,omitempty"`
	Stats      *StatsResult      `json:"stats,omitempty"`
}

// QuantilePoint is one (φ, estimate) pair.
type QuantilePoint struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// CDFPoint is one (x, P[X ≤ x]) pair.
type CDFPoint struct {
	X        float64 `json:"x"`
	Fraction float64 `json:"fraction"`
}

// RankBoundsPoint carries the guaranteed bounds on the fraction of values
// ≤ X.
type RankBoundsPoint struct {
	X  float64 `json:"x"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// HistogramBucket is one bar of an estimated equal-width histogram.
type HistogramBucket struct {
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Fraction float64 `json:"fraction"`
}

// ThresholdResult answers "is the φ-quantile above T?", with the cascade
// stage that settled it.
type ThresholdResult struct {
	T     float64 `json:"t"`
	Phi   float64 `json:"phi"`
	Above bool    `json:"above"`
	Stage string  `json:"stage"`
}

// StatsResult carries the closed-form summary statistics of a rollup.
type StatsResult struct {
	Count    float64 `json:"count"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	StdDev   float64 `json:"stddev"`
}

// DefaultThresholdPhi is the quantile fraction a threshold aggregation
// tests when none is given.
const DefaultThresholdPhi = 0.99

// validate checks one subquery without touching any data, so malformed
// subqueries fail before the executor spends a single merge or solve on
// them.
func (q *Subquery) validate() *Error {
	if err := q.Select.validate(); err != nil {
		return err
	}
	if len(q.Aggregations) == 0 {
		return Errorf(CodeInvalid, "subquery needs at least one aggregation")
	}
	if len(q.Aggregations) > MaxAggregations {
		return Errorf(CodeInvalid, "too many aggregations (%d > %d)", len(q.Aggregations), MaxAggregations)
	}
	for i := range q.Aggregations {
		if err := q.Aggregations[i].validate(); err != nil {
			return Errorf(CodeInvalid, "aggregation %d: %s", i, err.Message)
		}
	}
	return nil
}

func (sel *Selection) validate() *Error {
	hasKey := sel.Key != ""
	hasPrefix := sel.Prefix != nil
	switch {
	case hasKey && hasPrefix:
		return Errorf(CodeInvalid, "select: key and prefix are mutually exclusive")
	case !hasKey && !hasPrefix:
		return Errorf(CodeInvalid, "select: need key or prefix")
	}
	if sel.GroupBy != nil {
		if !hasPrefix {
			return Errorf(CodeInvalid, "select: group_by requires a prefix selection")
		}
		if *sel.GroupBy < 0 {
			return Errorf(CodeInvalid, "select: group_by must be a non-negative key-segment index")
		}
		if sel.Window != nil {
			return Errorf(CodeInvalid, "select: window and group_by are mutually exclusive")
		}
	}
	if w := sel.Window; w != nil {
		if w.Last < 0 {
			return Errorf(CodeInvalid, "select: window.last must be non-negative")
		}
		if w.Step < 0 {
			return Errorf(CodeInvalid, "select: window.step must be non-negative")
		}
		if w.Step > 0 && w.Last == 0 {
			return Errorf(CodeInvalid, "select: window.step requires window.last (the sliding width)")
		}
		if (w.StartUnix == nil) != (w.EndUnix == nil) {
			return Errorf(CodeInvalid, "select: window.start_unix and window.end_unix go together")
		}
		if w.StartUnix != nil {
			if math.IsNaN(*w.StartUnix) || math.IsNaN(*w.EndUnix) ||
				math.IsInf(*w.StartUnix, 0) || math.IsInf(*w.EndUnix, 0) {
				return Errorf(CodeInvalid, "select: window range must be finite")
			}
			if *w.StartUnix >= *w.EndUnix {
				return Errorf(CodeInvalid, "select: window.start_unix must precede window.end_unix")
			}
		}
	}
	return nil
}

func (a *Aggregation) validate() *Error {
	switch a.Op {
	case OpQuantiles:
		if len(a.Phis) > MaxPoints {
			return Errorf(CodeInvalid, "too many quantile fractions (%d > %d)", len(a.Phis), MaxPoints)
		}
		for _, phi := range a.Phis {
			if !validPhi(phi) {
				return Errorf(CodeInvalid, "quantile fraction %v outside [0,1]", phi)
			}
		}
	case OpCDF, OpRankBounds:
		if len(a.Xs) == 0 {
			return Errorf(CodeInvalid, "%s needs at least one evaluation point in xs", a.Op)
		}
		if len(a.Xs) > MaxPoints {
			return Errorf(CodeInvalid, "too many evaluation points (%d > %d)", len(a.Xs), MaxPoints)
		}
		for _, x := range a.Xs {
			if math.IsNaN(x) {
				return Errorf(CodeInvalid, "%s evaluation point is NaN", a.Op)
			}
		}
	case OpThreshold:
		if a.T == nil || math.IsNaN(*a.T) || math.IsInf(*a.T, 0) {
			return Errorf(CodeInvalid, "threshold needs a finite t")
		}
		if a.Phi != nil && !validPhi(*a.Phi) {
			return Errorf(CodeInvalid, "threshold phi %v outside [0,1]", *a.Phi)
		}
	case OpHistogram:
		if a.Buckets < 1 {
			return Errorf(CodeInvalid, "histogram needs buckets ≥ 1")
		}
		if a.Buckets > MaxHistogramBuckets {
			return Errorf(CodeInvalid, "too many histogram buckets (%d > %d)", a.Buckets, MaxHistogramBuckets)
		}
	case OpStats:
		// No parameters.
	case "":
		return Errorf(CodeInvalid, "missing op")
	default:
		return Errorf(CodeInvalid, "unknown op %q", a.Op)
	}
	return nil
}

func validPhi(phi float64) bool {
	return !math.IsNaN(phi) && phi >= 0 && phi <= 1
}

// phis returns the quantile fractions of a quantiles aggregation,
// defaulting to DefaultPhis.
func (a *Aggregation) phis() []float64 {
	if len(a.Phis) == 0 {
		return DefaultPhis
	}
	return a.Phis
}

// thresholdPhi returns the quantile fraction of a threshold aggregation,
// defaulting to DefaultThresholdPhi.
func (a *Aggregation) thresholdPhi() float64 {
	if a.Phi == nil {
		return DefaultThresholdPhi
	}
	return *a.Phi
}
