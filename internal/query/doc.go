// Package query is the typed query layer between the HTTP surface and the
// sharded sketch store: a batched request model plus a parallel
// planner/executor.
//
// A Request is a batch of independent Subqueries. Each subquery pairs a
// Selection of the key space — an exact key, a prefix rollup, or a prefix
// partitioned by a key segment (group_by) — with a list of typed
// Aggregations: quantiles, cdf, threshold (via the paper's cascade),
// rank_bounds, histogram and stats. This is the paper's headline workload
// (Gan et al., VLDB 2018 §2): an interactive dashboard refreshing dozens to
// thousands of quantile aggregations over high-cardinality subgroups in one
// round trip.
//
// The engine is generic over the store's serving backend (sketch.Backend):
// on the default moments backend every aggregation is available and
// estimates run through the maximum-entropy solver and moment-bound
// cascade; on the baseline backends (Merge12, t-digest, sampling) the
// planner validates capabilities up front — quantiles and thresholds
// evaluate directly on the backend's own estimator (threshold stage
// "Direct"), while the moment-structure operators (cdf, rank_bounds,
// histogram, stats) fail fast with the typed backend_unsupported error.
// Every result group is tagged with the backend name, and solve-cache keys
// carry the backend fingerprint.
//
// On stores with time panes, a Selection may additionally carry a Window
// (§7.2.2): a trailing-pane window, an explicit [start, end) wall-clock
// range, or a set of sliding positions (last + step), each position one
// result group. Sliding positions are evaluated with turnstile Sub/Merge
// slides and each position's maximum-entropy density is memoized like any
// other rollup's, so a threshold scan over W positions costs O(W·step·k)
// vector work plus only the solves the cascade cannot avoid.
//
// The Engine plans before it executes:
//
//   - Every subquery is validated up front, so malformed input fails before
//     any sketch is merged or any density solved.
//   - Selections are deduplicated across the batch: ten subqueries over the
//     same rollup merge its per-key sketches exactly once.
//   - Unique selections fan out over a bounded worker pool (Config.Workers,
//     default GOMAXPROCS).
//   - Each rollup's maximum-entropy density is solved lazily and memoized,
//     so quantiles, cdf and histogram aggregations of one selection share a
//     single solve; sliding-window positions additionally warm-start each
//     solve from the previous position's θ.
//   - With Config.SolveCache, resolved selections — merged sketches plus
//     their solved densities — are kept in a sharded bounded LRU across
//     Execute calls, keyed on the store's mutation version so any ingest
//     into covered keys invalidates the entry (see Engine.CacheStats).
//   - The request context is honored: when the deadline passes, remaining
//     subqueries fail with deadline_exceeded instead of running to
//     completion.
//
// Failures are isolated at two levels. A subquery that cannot be resolved
// (bad selection, no matching keys, deadline) carries its own {code,
// message} Error and leaves the rest of the batch intact; an aggregation
// that cannot be estimated (the solver's documented not_converged failure
// on near-discrete data) carries an aggregation-level Error, or degrades to
// guaranteed moment bounds where the paper defines a sound fallback
// (quantiles, threshold).
package query
