package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDenseAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4.5)
	if got := m.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := m.At(1, 2); got != -4.5 {
		t.Errorf("At(1,2) = %v, want -4.5", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Errorf("NewDenseFrom layout wrong: %v", m.Data)
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
}

func TestTMulVec(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.TMulVec([]float64{1, 2}, nil)
	want := []float64{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("TMulVec = %v, want %v", y, want)
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestNorm2Overflow(t *testing.T) {
	v := []float64{1e200, 1e200}
	got := Norm2(v)
	want := 1e200 * math.Sqrt2
	if !almostEq(got, want, 1e-12) {
		t.Errorf("Norm2 overflow-safe = %v, want %v", got, want)
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) != 0")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-3, 2, 1}); got != 3 {
		t.Errorf("NormInf = %v, want 3", got)
	}
}

func TestDotAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v, want 32", Dot(a, b))
	}
	AXPY(2, a, b)
	if b[0] != 6 || b[2] != 12 {
		t.Errorf("AXPY result = %v", b)
	}
}

// randomSPD builds a random symmetric positive definite matrix A = BᵀB + I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				s += 1
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(12)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x, nil)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		got := ch.Solve(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: solve[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a); err == nil {
		t.Error("expected ErrSingular for indefinite matrix")
	}
}

func TestSolveSPDRidge(t *testing.T) {
	// Singular PSD matrix: ridge retry should still produce a finite solve.
	a := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2}, 1e-10, 8)
	if err != nil {
		t.Fatalf("SolveSPD with ridge failed: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("SolveSPD returned non-finite %v", x)
		}
	}
	// The regularized solution should still nearly satisfy Ax≈b.
	b := a.MulVec(x, nil)
	if !almostEq(b[0], 2, 1e-4) {
		t.Errorf("ridge solution residual too large: %v", b)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(10)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the random matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x, nil)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("Solve failed: %v", err)
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: LU solve[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 3}, {6, 3}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Errorf("Det = %v, want -6", f.Det())
	}
}

func TestSolveVandermonde(t *testing.T) {
	// Recover known weights: measure with atoms at -0.5, 0, 0.75 and
	// weights 0.2, 0.3, 0.5. Moments mu_i = sum w_j x_j^i.
	nodes := []float64{-0.5, 0, 0.75}
	w := []float64{0.2, 0.3, 0.5}
	mu := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j, x := range nodes {
			mu[i] += w[j] * math.Pow(x, float64(i))
		}
	}
	got, err := SolveVandermonde(nodes, mu)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if !almostEq(got[i], w[i], 1e-10) {
			t.Errorf("weight[%d] = %v, want %v", i, got[i], w[i])
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDenseFrom([][]float64{{3, 0}, {0, 1}})
	eig, v := SymEigen(a, true)
	if !almostEq(eig[0], 1, 1e-12) || !almostEq(eig[1], 3, 1e-12) {
		t.Errorf("eigenvalues = %v, want [1 3]", eig)
	}
	if v == nil {
		t.Fatal("expected eigenvectors")
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	eig, _ := SymEigen(a, false)
	if !almostEq(eig[0], 1, 1e-12) || !almostEq(eig[1], 3, 1e-12) {
		t.Errorf("eigenvalues = %v, want [1 3]", eig)
	}
}

// Property: eigen-decomposition reconstructs the matrix.
func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, v := SymEigen(a, true)
		// Reconstruct V diag(eig) Vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += v.At(i, k) * eig[k] * v.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: reconstruction[%d][%d] = %v, want %v", trial, i, j, s, a.At(i, j))
				}
			}
		}
		// Orthonormality of eigenvectors.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				s := 0.0
				for r := 0; r < n; r++ {
					s += v.At(r, c1) * v.At(r, c2)
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if !almostEq(s, want, 1e-8) {
					t.Fatalf("trial %d: VᵀV[%d][%d] = %v, want %v", trial, c1, c2, s, want)
				}
			}
		}
	}
}

func TestCond2Sym(t *testing.T) {
	a := NewDenseFrom([][]float64{{100, 0}, {0, 1}})
	if c := Cond2Sym(a); !almostEq(c, 100, 1e-10) {
		t.Errorf("Cond2Sym = %v, want 100", c)
	}
	sing := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	if c := Cond2Sym(sing); !math.IsInf(c, 1) && c < 1e12 {
		t.Errorf("Cond2Sym of singular = %v, want huge", c)
	}
}

func TestPseudoInverseSym(t *testing.T) {
	// Full-rank: pseudo-inverse equals inverse.
	a := NewDenseFrom([][]float64{{2, 0}, {0, 4}})
	p := PseudoInverseSym(a, 1e-12)
	if !almostEq(p.At(0, 0), 0.5, 1e-10) || !almostEq(p.At(1, 1), 0.25, 1e-10) {
		t.Errorf("pseudo-inverse = %v", p.Data)
	}
	// Rank-deficient: A A⁺ A = A.
	s := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	ps := PseudoInverseSym(s, 1e-10)
	r := Mul(Mul(s, ps), s)
	for i := range r.Data {
		if !almostEq(r.Data[i], s.Data[i], 1e-8) {
			t.Errorf("A A+ A != A: %v vs %v", r.Data, s.Data)
		}
	}
}

// quick.Check property: Dot is symmetric and linear in the first argument.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(a, b [4]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		as, bs := a[:], b[:]
		for _, v := range append(append([]float64{}, as...), bs...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if math.Abs(alpha) > 1e50 {
			return true
		}
		sym := almostEq(Dot(as, bs), Dot(bs, as), 1e-12)
		scaled := make([]float64, 4)
		for i := range scaled {
			scaled[i] = alpha * as[i]
		}
		lin := almostEq(Dot(scaled, bs), alpha*Dot(as, bs), 1e-9)
		return sym && lin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// quick.Check property: LU solve then multiply recovers b for diagonally
// dominant matrices.
func TestLURoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 2 + int(seed%6)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(2*n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		back := a.MulVec(x, nil)
		for i := range b {
			if !almostEq(back[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
