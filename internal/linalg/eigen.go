package linalg

import (
	"math"
	"sort"
)

// SymEigen computes the eigenvalues (ascending) and, when wantVecs is true,
// the orthonormal eigenvectors of a symmetric matrix using the cyclic Jacobi
// method. Only the lower triangle of a is read. Jacobi is chosen for its
// robustness and the high relative accuracy of small eigenvalues — exactly
// what condition-number estimation needs.
//
// The returned eigenvector matrix V has eigenvectors as columns:
// A = V diag(λ) Vᵀ.
func SymEigen(a *Dense, wantVecs bool) (eig []float64, vecs *Dense) {
	if a.Rows != a.Cols {
		panic("linalg: SymEigen of non-square matrix")
	}
	n := a.Rows
	// Work on a symmetrized copy.
	w := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	var v *Dense
	if wantVecs {
		v = NewDense(n, n)
		for i := 0; i < n; i++ {
			v.Set(i, i, 1)
		}
	}

	jacobiDiagonalize(w, v)

	eig = make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = w.At(i, i)
	}
	if !wantVecs {
		sort.Float64s(eig)
		return eig, nil
	}
	// Sort eigenpairs ascending by eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return eig[idx[a]] < eig[idx[b]] })
	sortedEig := make([]float64, n)
	sortedV := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedEig[newCol] = eig[oldCol]
		for r := 0; r < n; r++ {
			sortedV.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedEig, sortedV
}

// jacobiDiagonalize runs cyclic Jacobi sweeps on the symmetric matrix w
// in place until its off-diagonal mass vanishes, accumulating rotations
// into v when non-nil. On return w's diagonal holds the (unsorted)
// eigenvalues.
func jacobiDiagonalize(w, v *Dense) {
	n := w.Rows
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-300 {
			break
		}
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				app := w.At(p, p)
				aqq := w.At(q, q)
				scale := math.Abs(app) + math.Abs(aqq)
				if math.Abs(apq) <= 1e-17*scale || apq == 0 {
					continue
				}
				converged = false
				// Classic Jacobi rotation.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ)ᵀ W J(p,q,θ).
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				if v != nil {
					for k := 0; k < n; k++ {
						vkp := v.At(k, p)
						vkq := v.At(k, q)
						v.Set(k, p, c*vkp-s*vkq)
						v.Set(k, q, s*vkp+c*vkq)
					}
				}
			}
		}
		if converged {
			break
		}
	}
}

// Cond2SymWork is Cond2Sym evaluated in caller-provided scratch: work must
// be an n×n matrix (its contents are overwritten), so condition screening
// loops — basis selection probes one candidate moment at a time — run
// without per-probe allocation.
func Cond2SymWork(a, work *Dense) float64 {
	if a.Rows != a.Cols {
		panic("linalg: Cond2SymWork of non-square matrix")
	}
	n := a.Rows
	if work.Rows != n || work.Cols != n {
		panic("linalg: Cond2SymWork scratch dimension mismatch")
	}
	if n == 0 {
		return 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			work.Set(i, j, v)
			work.Set(j, i, v)
		}
	}
	jacobiDiagonalize(work, nil)
	mn, mx := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		al := math.Abs(work.At(i, i))
		if al < mn {
			mn = al
		}
		if al > mx {
			mx = al
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// Cond2Sym returns the 2-norm condition number |λ|max/|λ|min of a symmetric
// matrix. It returns +Inf when the smallest eigenvalue magnitude underflows.
func Cond2Sym(a *Dense) float64 {
	eig, _ := SymEigen(a, false)
	if len(eig) == 0 {
		return 1
	}
	mn, mx := math.Inf(1), 0.0
	for _, l := range eig {
		al := math.Abs(l)
		if al < mn {
			mn = al
		}
		if al > mx {
			mx = al
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// PseudoInverseSym returns the Moore-Penrose pseudo-inverse of a symmetric
// matrix, dropping eigenvalues below rcond*|λ|max. Used to project onto
// affine moment-constraint sets in the discretized lesion estimators.
func PseudoInverseSym(a *Dense, rcond float64) *Dense {
	eig, v := SymEigen(a, true)
	n := a.Rows
	mx := 0.0
	for _, l := range eig {
		if al := math.Abs(l); al > mx {
			mx = al
		}
	}
	cut := rcond * mx
	out := NewDense(n, n)
	for k := 0; k < n; k++ {
		if math.Abs(eig[k]) <= cut {
			continue
		}
		inv := 1 / eig[k]
		for i := 0; i < n; i++ {
			vik := v.At(i, k)
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += inv * vik * v.At(j, k)
			}
		}
	}
	return out
}
