package linalg

import "math"

// LU holds an LU factorization with partial pivoting: P A = L U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factors a general square matrix with partial pivoting. It returns
// ErrSingular when a pivot underflows to zero.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	lu := make([]float64, n*n)
	copy(lu, a.Data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Find pivot.
		p := col
		mx := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r*n+col]); v > mx {
				mx, p = v, r
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[col*n+j] = lu[col*n+j], lu[p*n+j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		d := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := lu[r*n+col] / d
			lu[r*n+col] = m
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= m * lu[col*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A x = b.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Solve solves the general square system A x = b via LU with partial
// pivoting.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveVandermonde solves the (m+1)x(m+1) system V w = mu where
// V[i][j] = nodes[j]^i. This is the primal Vandermonde system that recovers
// quadrature weights from moments. Nodes must be distinct; the solve goes
// through LU for simplicity and robustness at the small sizes used here.
func SolveVandermonde(nodes, mu []float64) ([]float64, error) {
	n := len(nodes)
	if len(mu) != n {
		panic("linalg: SolveVandermonde dimension mismatch")
	}
	v := NewDense(n, n)
	for j, x := range nodes {
		p := 1.0
		for i := 0; i < n; i++ {
			v.Set(i, j, p)
			p *= x
		}
	}
	return Solve(v, mu)
}
