// Package linalg provides the small dense linear-algebra kernels the
// moments-sketch estimation pipeline depends on: Cholesky and LU solves for
// Newton steps, a symmetric Jacobi eigensolver for condition numbers and
// Gram-matrix pseudo-inverses, and Vandermonde solves for quadrature weights.
//
// Matrices in this package are small (rarely larger than 25x25, bounded by
// the sketch order), so the implementations favour numerical robustness and
// clarity over blocking or cache tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
//
// The zero value is an empty matrix; use NewDense to allocate.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a Rows x Cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M x. The destination slice is allocated if nil.
func (m *Dense) MulVec(x []float64, y []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	if y == nil {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Mᵀ x.
func (m *Dense) TMulVec(x []float64, y []float64) []float64 {
	if len(x) != m.Rows {
		panic("linalg: TMulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.Cols)
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul computes C = A B.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		r := x / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// NormInf returns the maximum absolute component of v.
func NormInf(v []float64) float64 {
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or not positive definite, for Cholesky) to working
// precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")
