package linalg

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n*n storage
}

// choleskyFactor factors the symmetric positive-definite matrix a into the
// caller-provided buffer l (len n*n). Only the lower triangle of a is read.
// It returns ErrSingular if a pivot is not strictly positive.
func choleskyFactor(a *Dense, l []float64) error {
	n := a.Rows
	copy(l, a.Data)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrSingular
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / d
		}
	}
	// Zero the strict upper triangle so the factor is clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return nil
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read. It returns ErrSingular if a pivot is not
// strictly positive (a is singular or indefinite to working precision).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := make([]float64, n*n)
	if err := choleskyFactor(a, l); err != nil {
		return nil, err
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A x = b using the factorization. The result is written into a
// new slice.
func (c *Cholesky) Solve(b []float64) []float64 {
	x := make([]float64, c.n)
	return c.SolveInto(b, x)
}

// SolveInto solves A x = b into dst (len n), which is returned. b and dst
// may alias.
func (c *Cholesky) SolveInto(b, dst []float64) []float64 {
	if len(b) != c.n || len(dst) != c.n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n := c.n
	copy(dst, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := dst[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * dst[k]
		}
		dst[i] = s / c.l[i*n+i]
	}
	// Back solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * dst[k]
		}
		dst[i] = s / c.l[i*n+i]
	}
	return dst
}

// SPDSolver is a reusable symmetric-positive-definite solve: the working
// copy, Cholesky factor and solution vector are kept between calls, so a
// Newton loop solving the same-dimension system every iteration allocates
// nothing after the first call. The zero value is ready to use; a solver
// must not be used concurrently.
type SPDSolver struct {
	work *Dense
	l    []float64
	x    []float64
}

// Solve solves A x = b for symmetric positive definite A with the same
// ridge-retry policy as SolveSPD. The returned slice aliases the solver's
// internal buffer and is valid until the next call.
func (s *SPDSolver) Solve(a *Dense, b []float64, ridge float64, maxTries int) ([]float64, error) {
	if ridge <= 0 {
		ridge = 1e-12
	}
	n := a.Rows
	if s.work == nil || cap(s.work.Data) < n*n {
		s.work = NewDense(n, n)
		s.l = make([]float64, n*n)
		s.x = make([]float64, n)
	}
	s.work.Rows, s.work.Cols = n, n
	s.work.Data = s.work.Data[:n*n]
	s.l = s.l[:n*n]
	s.x = s.x[:n]
	copy(s.work.Data, a.Data)
	for try := 0; try < maxTries; try++ {
		if err := choleskyFactor(s.work, s.l); err == nil {
			ch := Cholesky{n: n, l: s.l}
			return ch.SolveInto(b, s.x), nil
		}
		// Add (more) ridge and retry.
		scale := ridge * math.Pow(10, float64(try))
		copy(s.work.Data, a.Data)
		for i := 0; i < n; i++ {
			s.work.Data[i*n+i] += scale * (1 + math.Abs(a.At(i, i)))
		}
	}
	return nil, ErrSingular
}

// SolveSPD solves A x = b for symmetric positive definite A, adding a ridge
// term ridge*I before factoring if the bare factorization fails. It retries
// with geometrically increasing ridge up to maxTries times. This is the
// Newton-step workhorse: near-singular Hessians get regularized rather than
// aborting the solve. Loops should hold an SPDSolver instead to avoid the
// per-call allocations.
func SolveSPD(a *Dense, b []float64, ridge float64, maxTries int) ([]float64, error) {
	var s SPDSolver
	x, err := s.Solve(a, b, ridge, maxTries)
	if err != nil {
		return nil, err
	}
	return x, nil
}
