package linalg

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n*n storage
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read. It returns ErrSingular if a pivot is not
// strictly positive (a is singular or indefinite to working precision).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := make([]float64, n*n)
	copy(l, a.Data)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / d
		}
	}
	// Zero the strict upper triangle so the factor is clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve solves A x = b using the factorization. The result is written into a
// new slice.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n := c.n
	x := make([]float64, n)
	copy(x, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	// Back solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive definite A, adding a ridge
// term ridge*I before factoring if the bare factorization fails. It retries
// with geometrically increasing ridge up to maxTries times. This is the
// Newton-step workhorse: near-singular Hessians get regularized rather than
// aborting the solve.
func SolveSPD(a *Dense, b []float64, ridge float64, maxTries int) ([]float64, error) {
	if ridge <= 0 {
		ridge = 1e-12
	}
	work := a.Clone()
	for try := 0; try < maxTries; try++ {
		ch, err := NewCholesky(work)
		if err == nil {
			return ch.Solve(b), nil
		}
		// Add (more) ridge and retry.
		scale := ridge * math.Pow(10, float64(try))
		copy(work.Data, a.Data)
		for i := 0; i < work.Rows; i++ {
			work.Data[i*work.Cols+i] += scale * (1 + math.Abs(a.At(i, i)))
		}
	}
	return nil, ErrSingular
}
