package server

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/shard"
)

// FuzzDecodeNDJSON throws hostile byte streams at the ingest hot path.
// The decoder sits in front of every buffered handle, so the invariants it
// must hold are load-bearing for the whole buffered-ingest design:
//
//   - never panic, whatever the bytes;
//   - on error, the batch Discards cleanly and the store stays untouched;
//   - on success, every accepted observation has a non-empty bounded key
//     and a finite value, the flush count matches the store's total, and
//     the store's aggregate state remains finite.
//
// Seed corpus lives in testdata/fuzz/FuzzDecodeNDJSON; CI runs a short
// fuzz pass on top of the corpus replay that plain `go test` performs.
func FuzzDecodeNDJSON(f *testing.F) {
	f.Add([]byte("{\"key\":\"a\",\"value\":1}\n{\"key\":\"b\",\"value\":2.5}\n"))
	f.Add([]byte("{\"key\":\"a\",\"value\":1,\"ts\":1700000000.25}\n"))
	f.Add([]byte("{\"key\":\"a\"}\n"))                           // missing value
	f.Add([]byte("{\"key\":\"\",\"value\":1}\n"))                // empty key
	f.Add([]byte("{\"key\":\"a\",\"value\":\"12\"}\n"))          // value as string
	f.Add([]byte("{\"key\":\"a\",\"value\":1e999}\n"))           // overflows float64
	f.Add([]byte("{\"key\":\"a\",\"value\":NaN}\n"))             // not JSON at all
	f.Add([]byte("{\"key\":\"a\",\"value\":1,\"ts\":1.7e12}\n")) // ms-unit ts
	f.Add([]byte("{\"key\":\"a\",\"value\":1,\"ts\":-5}\n"))     // negative ts
	f.Add([]byte("{\"key\":\"a\",\"value\":1,\"ts\":9.3e9}\n"))  // ts past the nanosecond horizon
	f.Add([]byte("{\"key\":\"\xff\xfe\",\"value\":1}\n"))        // invalid UTF-8 key
	f.Add([]byte("{\"key\":\"a\",\"value\":1}"))                 // no trailing newline
	f.Add([]byte("\n\n  \n{\"key\":\"a\",\"value\":1}\n\r\n"))   // blank/whitespace lines
	f.Add([]byte("{\"key\":\"a\",\"value\":1}\n{\"key\":\"b\"")) // truncated mid-object
	f.Add([]byte("[{\"key\":\"a\",\"value\":1}]\n"))             // array where a line object belongs
	f.Add([]byte("{\"key\":\"" + strings.Repeat("k", shard.MaxKeyLen+1) + "\",\"value\":1}\n"))
	f.Add([]byte("{\"value\":1,\"key\":\"a\",\"value\":2}\n")) // duplicate field
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := shard.New(shard.WithShards(2))
		batch := store.NewBatch()
		err := decodeNDJSON(bytes.NewReader(data), batch)
		if err != nil {
			// A rejected stream must leave no residue once discarded —
			// this mirrors handleIngest's deferred Discard.
			batch.Discard()
			if got := store.TotalCount(); got != 0 {
				t.Fatalf("decode error %v but store has %v observations", err, got)
			}
			return
		}
		n := batch.Flush()
		if got := store.TotalCount(); got != float64(n) {
			t.Fatalf("flushed %d observations but TotalCount = %v", n, got)
		}
		for _, key := range store.Keys("") {
			if key == "" || len(key) > shard.MaxKeyLen {
				t.Fatalf("accepted out-of-bounds key %q (len %d)", key, len(key))
			}
			if c := store.Count(key); math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				t.Fatalf("key %q: non-finite or non-positive count %v", key, c)
			}
		}
	})
}
