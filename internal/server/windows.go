package server

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"time"

	"repro/internal/cascade"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/window"
)

// windowsRequest is the body of POST /v1/windows: an alert scan that slides
// a width-pane window across the retained pane ring of one key (or one
// prefix rollup) and reports every position whose φ-quantile exceeds t.
// Exactly one of Key and Prefix must be set; Prefix is a pointer so the
// empty prefix (scan everything) stays expressible.
type windowsRequest struct {
	Key    string   `json:"key,omitempty"`
	Prefix *string  `json:"prefix,omitempty"`
	Width  int      `json:"width"`
	T      *float64 `json:"t"`
	Phi    *float64 `json:"phi,omitempty"`
}

func (wr *windowsRequest) validate(retention int) *query.Error {
	hasKey := wr.Key != ""
	hasPrefix := wr.Prefix != nil
	switch {
	case hasKey && hasPrefix:
		return query.Errorf(query.CodeInvalid, "key and prefix are mutually exclusive")
	case !hasKey && !hasPrefix:
		return query.Errorf(query.CodeInvalid, "need key or prefix")
	}
	if wr.Width < 1 || wr.Width > retention {
		return query.Errorf(query.CodeInvalid, "width must be in [1, %d] panes", retention)
	}
	// Same expansion bound as /v1/query window selections: a scan is one
	// cascade resolution per position, so cap the position count.
	if positions := retention - wr.Width + 1; positions > query.MaxWindows {
		return query.Errorf(query.CodeTooLarge,
			"scan expands to %d window positions (> %d); use a wider window, or a /v1/query window selection with a range and step",
			positions, query.MaxWindows)
	}
	if wr.T == nil || math.IsNaN(*wr.T) || math.IsInf(*wr.T, 0) {
		return query.Errorf(query.CodeInvalid, "need a finite threshold t")
	}
	if wr.Phi != nil && (math.IsNaN(*wr.Phi) || *wr.Phi < 0 || *wr.Phi > 1) {
		return query.Errorf(query.CodeInvalid, "phi %v outside [0,1]", *wr.Phi)
	}
	return nil
}

// hotWindow is one breaching window position of a /v1/windows scan.
type hotWindow struct {
	// Index is the window's starting pane position within the scan (0 =
	// oldest retained pane).
	Index int `json:"index"`
	// StartUnix/EndUnix bound the window, [StartUnix, EndUnix), in unix
	// seconds.
	StartUnix float64 `json:"start_unix"`
	EndUnix   float64 `json:"end_unix"`
}

// windowsResponse is the result of one alert scan.
type windowsResponse struct {
	PaneWidthSeconds float64     `json:"pane_width_seconds"`
	Panes            int         `json:"panes"`
	Width            int         `json:"width"`
	Windows          int         `json:"windows"`
	Keys             int         `json:"keys"`
	T                float64     `json:"t"`
	Phi              float64     `json:"phi"`
	Hot              []hotWindow `json:"hot"`
	MergeNS          int64       `json:"merge_ns"`
	EstNS            int64       `json:"est_ns"`
	Cascade          struct {
		Queries  int            `json:"queries"`
		Resolved map[string]int `json:"resolved"`
	} `json:"cascade"`
}

// handleWindowsV1 is the sliding-window alert-scan adapter (§7.2.2): it
// fetches the retained pane series from the shard store and drives
// window.ScanMoments over it — turnstile Sub/Merge per slide, thresholds
// resolved through the moment-bound cascade — in one request.
func (s *Server) handleWindowsV1(w http.ResponseWriter, r *http.Request) {
	_, retention, enabled := s.store.WindowConfig()
	if !enabled {
		writeQueryError(w, query.Errorf(query.CodeInvalid,
			"store has no time panes; start the server with a pane width to enable window scans"))
		return
	}
	if !s.store.Backend().Caps.Cascade {
		// The scan's cascade reads moment bounds only the moments backend
		// carries; sliding-window thresholds on other backends go through
		// /v1/query window selections instead.
		writeQueryError(w, query.Errorf(query.CodeBackendUnsupported,
			"/v1/windows requires the moments backend (serving %q); use a /v1/query window selection with a threshold aggregation",
			s.store.Backend().Name))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req windowsRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "decoding request: %v", err)
		return
	}
	if qerr := req.validate(retention); qerr != nil {
		writeQueryError(w, qerr)
		return
	}

	var ps *shard.PaneSeries
	var err error
	if req.Key != "" {
		ps, err = s.store.Panes(req.Key)
	} else {
		ps, err = s.store.PanesPrefix(r.Context(), *req.Prefix)
	}
	if err != nil {
		switch {
		case errors.Is(err, shard.ErrNoKey) && req.Key != "":
			writeQueryError(w, query.Errorf(query.CodeNotFound, "no such key: %q", req.Key))
		case errors.Is(err, shard.ErrNoKey):
			writeQueryError(w, query.Errorf(query.CodeNotFound, "no keys with prefix %q", *req.Prefix))
		case r.Context().Err() != nil:
			writeQueryError(w, query.Errorf(query.CodeDeadline, "request deadline exceeded"))
		default:
			writeQueryError(w, query.Errorf(query.CodeInternal, "%v", err))
		}
		return
	}

	phi := query.DefaultThresholdPhi
	if req.Phi != nil {
		phi = *req.Phi
	}
	raws, ok := ps.MomentsPanes()
	if !ok {
		// Unreachable given the backend guard above; kept so a future
		// backend with Cascade but non-moments panes fails loudly.
		writeQueryError(w, query.Errorf(query.CodeBackendUnsupported,
			"/v1/windows requires moments panes (serving %q)", s.store.Backend().Name))
		return
	}
	cfg := cascade.Full()
	res, err := window.ScanMomentsContext(r.Context(), raws, req.Width, *req.T, phi, cfg, s.solver)
	if err != nil {
		if r.Context().Err() != nil {
			writeQueryError(w, query.Errorf(query.CodeDeadline, "request deadline exceeded"))
			return
		}
		writeQueryError(w, query.Errorf(query.CodeInternal, "scanning windows: %v", err))
		return
	}

	out := windowsResponse{
		PaneWidthSeconds: ps.Width.Seconds(),
		Panes:            len(ps.Panes),
		Width:            req.Width,
		Windows:          len(ps.Panes) - req.Width + 1,
		Keys:             ps.Keys,
		T:                *req.T,
		Phi:              phi,
		Hot:              make([]hotWindow, 0, len(res.Hot)),
		MergeNS:          res.MergeTime.Nanoseconds(),
		EstNS:            res.EstTime.Nanoseconds(),
	}
	for _, idx := range res.Hot {
		out.Hot = append(out.Hot, hotWindow{
			Index:     idx,
			StartUnix: unixSeconds(ps.PaneStart(idx)),
			EndUnix:   unixSeconds(ps.PaneStart(idx + req.Width)),
		})
	}
	out.Cascade.Queries = res.Stats.Queries
	out.Cascade.Resolved = map[string]int{}
	for stage := cascade.Stage(0); stage < cascade.NumStages; stage++ {
		out.Cascade.Resolved[stage.String()] = res.Stats.Resolved[stage]
	}
	writeJSON(w, http.StatusOK, out)
}

func unixSeconds(t time.Time) float64 {
	return float64(t.UnixNano()) / float64(time.Second)
}
