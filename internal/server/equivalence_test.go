package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/query"
)

// The equivalence suite asserts that every legacy GET endpoint returns
// byte-identical results to its /v1/query translation: the GET response
// body must equal the result of posting the adapter's subquery to
// /v1/query and reshaping the typed response through the same shaping
// helper the adapter uses. Both paths run the engine independently, so
// equality holds only if (a) the adapters faithfully delegate to the
// engine and (b) engine results are bit-deterministic.

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postV1(t *testing.T, ts *httptest.Server, req query.Request) *query.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/query: status %d, body %s", resp.StatusCode, b)
	}
	var out query.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// encodeLikeServer marshals v exactly as writeJSON does (no HTML escaping,
// trailing newline), so byte comparison against a served body is exact.
func encodeLikeServer(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertEquivalent(t *testing.T, name string, got []byte, shaped map[string]any, qerr *query.Error) {
	t.Helper()
	if qerr != nil {
		t.Fatalf("%s: shaping v1 response: %v", name, qerr)
	}
	want := encodeLikeServer(t, shaped)
	if !bytes.Equal(got, want) {
		t.Errorf("%s: legacy GET and /v1/query translation differ\nlegacy: %s\nv1:     %s", name, got, want)
	}
}

func TestEquivalenceQuantile(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	legacy := getBody(t, ts.URL+"/quantile?key=us.web&q=0.5,0.9,0.99")
	v1 := postV1(t, ts, query.Request{Queries: []query.Subquery{
		quantileSubquery("us.web", []float64{0.5, 0.9, 0.99}),
	}})
	shaped, qerr := shapeQuantile("us.web", &v1.Results[0])
	assertEquivalent(t, "quantile", legacy, shaped, qerr)
}

func TestEquivalenceMergeRollup(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	legacy := getBody(t, ts.URL+"/merge?prefix=us.&q=0.5,0.99")
	v1 := postV1(t, ts, query.Request{Queries: []query.Subquery{
		mergeSubquery("us.", []float64{0.5, 0.99}),
	}})
	shaped, qerr := shapeMerge("us.", &v1.Results[0])
	assertEquivalent(t, "merge", legacy, shaped, qerr)
}

func TestEquivalenceMergeGroupBy(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	legacy := getBody(t, ts.URL+"/merge?groupby=0&q=0.5")
	v1 := postV1(t, ts, query.Request{Queries: []query.Subquery{
		groupBySubquery("", 0, []float64{0.5}),
	}})
	shaped, qerr := shapeGroupBy("", 0, &v1.Results[0])
	assertEquivalent(t, "merge groupby", legacy, shaped, qerr)
}

func TestEquivalenceThreshold(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	cases := []struct {
		name        string
		url         string
		key, prefix string
		hasPrefix   bool
		t, phi      float64
	}{
		{"key", "/threshold?key=us.web&t=1e9&phi=0.99", "us.web", "", false, 1e9, 0.99},
		{"prefix", "/threshold?prefix=eu.&t=1&phi=0.5", "", "eu.", true, 1, 0.5},
	}
	for _, tc := range cases {
		legacy := getBody(t, ts.URL+tc.url)
		v1 := postV1(t, ts, query.Request{Queries: []query.Subquery{
			thresholdSubquery(tc.key, tc.prefix, tc.hasPrefix, tc.t, tc.phi),
		}})
		shaped, qerr := shapeThreshold(tc.key, tc.prefix, tc.hasPrefix, &v1.Results[0])
		assertEquivalent(t, "threshold "+tc.name, legacy, shaped, qerr)
	}
}

// TestEquivalenceRepeatable double-checks the premise of the suite: the
// same query answered twice must be byte-identical (deterministic merge
// order and solver).
func TestEquivalenceRepeatable(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)
	for _, url := range []string{
		"/quantile?key=eu.api&q=0.9",
		"/merge?prefix=&q=0.5",
		"/merge?groupby=1&q=0.99",
	} {
		a := getBody(t, ts.URL+url)
		b := getBody(t, ts.URL+url)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two identical queries differ:\n%s\n%s", url, a, b)
		}
	}
}

// TestErrorEnvelope asserts the structured {code, message} envelope on
// every failing endpoint, with codes mapped to the right statuses.
func TestErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	cases := []struct {
		method, url, body string
		status            int
		code              string
	}{
		{"GET", "/quantile", "", http.StatusBadRequest, query.CodeInvalid},
		{"GET", "/quantile?key=missing", "", http.StatusNotFound, query.CodeNotFound},
		{"GET", "/quantile?key=x&q=1.5", "", http.StatusBadRequest, query.CodeInvalid},
		{"GET", "/merge?prefix=asia.", "", http.StatusNotFound, query.CodeNotFound},
		{"GET", "/merge?groupby=9", "", http.StatusBadRequest, query.CodeInvalid},
		{"GET", "/threshold?key=us.web", "", http.StatusBadRequest, query.CodeInvalid},
		{"GET", "/threshold?key=missing&t=1", "", http.StatusNotFound, query.CodeNotFound},
		{"POST", "/ingest", `[{"key":"","value":1}]`, http.StatusBadRequest, query.CodeInvalid},
		{"POST", "/restore", "garbage", http.StatusBadRequest, query.CodeInvalid},
		{"POST", "/v1/query", `{`, http.StatusBadRequest, query.CodeInvalid},
		{"POST", "/v1/query", `{"queries":[]}`, http.StatusBadRequest, query.CodeInvalid},
		{"POST", "/v1/query", `{"unknown_field":1}`, http.StatusBadRequest, query.CodeInvalid},
	}
	for _, tc := range cases {
		var resp *http.Response
		var err error
		if tc.method == "GET" {
			resp, err = http.Get(ts.URL + tc.url)
		} else {
			resp, err = http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.url, resp.StatusCode, tc.status)
		}
		var envelope struct {
			Error *query.Error `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("%s %s: decoding envelope: %v", tc.method, tc.url, err)
		}
		resp.Body.Close()
		if envelope.Error == nil {
			t.Errorf("%s %s: no error envelope", tc.method, tc.url)
			continue
		}
		if envelope.Error.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.url, envelope.Error.Code, tc.code)
		}
		if envelope.Error.Message == "" {
			t.Errorf("%s %s: empty message", tc.method, tc.url)
		}
	}
}

// TestV1QueryBatchHTTP exercises the batched endpoint end to end: a batch
// mixing group-bys, rollups, exact keys and failures returns per-subquery
// results with isolated errors.
func TestV1QueryBatchHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	euPrefix, emptyPrefix, level := "eu.", "", 1
	tVal := 1.0
	req := query.Request{Queries: []query.Subquery{
		{
			ID:     "by-service",
			Select: query.Selection{Prefix: &emptyPrefix, GroupBy: &level},
			Aggregations: []query.Aggregation{
				{Op: query.OpQuantiles, Phis: []float64{0.5, 0.99}},
				{Op: query.OpStats},
			},
		},
		{
			ID:           "eu-threshold",
			Select:       query.Selection{Prefix: &euPrefix},
			Aggregations: []query.Aggregation{{Op: query.OpThreshold, T: &tVal}},
		},
		{
			ID:           "missing",
			Select:       query.Selection{Key: "nope"},
			Aggregations: []query.Aggregation{{Op: query.OpStats}},
		},
		{
			ID:           "exact",
			Select:       query.Selection{Key: "us.web"},
			Aggregations: []query.Aggregation{{Op: query.OpRankBounds, Xs: []float64{1}}},
		},
	}}
	resp := postV1(t, ts, req)
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	byService := resp.Results[0]
	if byService.Error != nil {
		t.Fatalf("by-service: %v", byService.Error)
	}
	if len(byService.Groups) != 2 {
		t.Fatalf("by-service: %d groups, want 2 (web, api)", len(byService.Groups))
	}
	for _, g := range byService.Groups {
		if g.Group != "web" && g.Group != "api" {
			t.Errorf("unexpected group %q", g.Group)
		}
		if g.Keys != 2 || g.Count != 4000 {
			t.Errorf("group %q: keys/count = %d/%v, want 2/4000", g.Group, g.Keys, g.Count)
		}
	}
	if th := resp.Results[1]; th.Error != nil || th.Groups[0].Aggregations[0].Threshold == nil {
		t.Errorf("eu-threshold: %+v", th)
	}
	if m := resp.Results[2]; m.Error == nil || m.Error.Code != query.CodeNotFound {
		t.Errorf("missing: error = %v, want %s", m.Error, query.CodeNotFound)
	}
	if e := resp.Results[3]; e.Error != nil || len(e.Groups[0].Aggregations[0].RankBounds) != 1 {
		t.Errorf("exact: %+v", e)
	}
}

// TestV1QueryLargeBatch sends a batch of 120 group-by subqueries over HTTP
// (the acceptance scenario) and checks every result arrives in order.
func TestV1QueryLargeBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	var req query.Request
	for i := 0; i < 120; i++ {
		prefix, level := "", i%2
		req.Queries = append(req.Queries, query.Subquery{
			ID:           fmt.Sprintf("q%d", i),
			Select:       query.Selection{Prefix: &prefix, GroupBy: &level},
			Aggregations: []query.Aggregation{{Op: query.OpQuantiles, Phis: []float64{0.9}}},
		})
	}
	resp := postV1(t, ts, req)
	if len(resp.Results) != 120 {
		t.Fatalf("got %d results, want 120", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.ID != fmt.Sprintf("q%d", i) {
			t.Fatalf("result %d has id %q", i, res.ID)
		}
		if res.Error != nil {
			t.Errorf("result %d: %v", i, res.Error)
		}
		if len(res.Groups) != 2 {
			t.Errorf("result %d: %d groups, want 2", i, len(res.Groups))
		}
	}
}
