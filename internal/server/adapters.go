package server

import (
	"context"
	"math"
	"net/http"
	"strconv"

	"repro/internal/query"
)

// This file implements the deprecated single-shot GET endpoints as thin
// adapters over the /v1/query engine: each handler translates its URL
// parameters into a one-subquery batch, executes it, and reshapes the
// engine result into the endpoint's historical JSON shape. The shaping
// helpers are pure so the equivalence test suite can assert byte-identical
// behavior between a GET endpoint and its /v1/query translation.

// execOne runs a single-subquery batch and returns its lone result.
func (s *Server) execOne(ctx context.Context, sq query.Subquery) *query.Result {
	resp, err := s.engine.Execute(ctx, &query.Request{Queries: []query.Subquery{sq}})
	if err != nil {
		return &query.Result{Error: err}
	}
	return &resp.Results[0]
}

// quantileSubquery is the /v1/query translation of GET /quantile.
func quantileSubquery(key string, phis []float64) query.Subquery {
	return query.Subquery{
		Select: query.Selection{Key: key},
		Aggregations: []query.Aggregation{
			{Op: query.OpStats},
			{Op: query.OpQuantiles, Phis: phis},
		},
	}
}

// shapeQuantile reshapes the engine result into the legacy /quantile body.
func shapeQuantile(key string, res *query.Result) (map[string]any, *query.Error) {
	if res.Error != nil {
		return nil, res.Error
	}
	g := res.Groups[0]
	st, q := g.Aggregations[0].Stats, g.Aggregations[1]
	body := map[string]any{
		"key":       key,
		"count":     st.Count,
		"min":       st.Min,
		"max":       st.Max,
		"mean":      st.Mean,
		"quantiles": q.Quantiles,
	}
	if q.Degraded {
		body["degraded"] = true
	}
	return body, nil
}

// Deprecated: GET /quantile answers quantile queries over one exact key.
// It is an adapter over POST /v1/query; prefer the batched endpoint.
func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "missing key parameter")
		return
	}
	phis, err := parsePhis(q["q"])
	if err != nil {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "%v", err)
		return
	}
	body, qerr := shapeQuantile(key, s.execOne(r.Context(), quantileSubquery(key, phis)))
	if qerr != nil {
		writeQueryError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// mergeSubquery is the /v1/query translation of GET /merge without groupby.
func mergeSubquery(prefix string, phis []float64) query.Subquery {
	return query.Subquery{
		Select: query.Selection{Prefix: &prefix},
		Aggregations: []query.Aggregation{
			{Op: query.OpStats},
			{Op: query.OpQuantiles, Phis: phis},
		},
	}
}

// shapeMerge reshapes the engine result into the legacy /merge rollup body.
func shapeMerge(prefix string, res *query.Result) (map[string]any, *query.Error) {
	if res.Error != nil {
		return nil, res.Error
	}
	g := res.Groups[0]
	st, q := g.Aggregations[0].Stats, g.Aggregations[1]
	body := map[string]any{
		"prefix":    prefix,
		"keys":      g.Keys,
		"merges":    g.Keys,
		"count":     st.Count,
		"min":       st.Min,
		"max":       st.Max,
		"quantiles": q.Quantiles,
	}
	if q.Degraded {
		body["degraded"] = true
	}
	return body, nil
}

// groupBySubquery is the /v1/query translation of GET /merge with groupby.
func groupBySubquery(prefix string, level int, phis []float64) query.Subquery {
	return query.Subquery{
		Select: query.Selection{Prefix: &prefix, GroupBy: &level},
		Aggregations: []query.Aggregation{
			{Op: query.OpQuantiles, Phis: phis},
		},
	}
}

// shapeGroupBy reshapes the engine result into the legacy /merge group-by
// body.
func shapeGroupBy(prefix string, level int, res *query.Result) (map[string]any, *query.Error) {
	if res.Error != nil {
		return nil, res.Error
	}
	type groupResult struct {
		Group     string                `json:"group"`
		Keys      int                   `json:"keys"`
		Count     float64               `json:"count"`
		Quantiles []query.QuantilePoint `json:"quantiles"`
	}
	results := make([]groupResult, len(res.Groups))
	keys := 0
	for i, g := range res.Groups {
		results[i] = groupResult{
			Group:     g.Group,
			Keys:      g.Keys,
			Count:     g.Count,
			Quantiles: g.Aggregations[0].Quantiles,
		}
		keys += g.Keys
	}
	return map[string]any{
		"prefix":  prefix,
		"groupby": level,
		"keys":    keys,
		"groups":  results,
	}, nil
}

// Deprecated: GET /merge answers cube-style rollups: merge every key under
// a prefix, optionally grouped by one key segment. It is an adapter over
// POST /v1/query; prefer the batched endpoint.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	phis, err := parsePhis(q["q"])
	if err != nil {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "%v", err)
		return
	}

	if !q.Has("groupby") {
		body, qerr := shapeMerge(prefix, s.execOne(r.Context(), mergeSubquery(prefix, phis)))
		if qerr != nil {
			writeQueryError(w, qerr)
			return
		}
		writeJSON(w, http.StatusOK, body)
		return
	}

	level, err := strconv.Atoi(q.Get("groupby"))
	if err != nil || level < 0 {
		writeError(w, http.StatusBadRequest, query.CodeInvalid,
			"groupby must be a non-negative key-segment index")
		return
	}
	body, qerr := shapeGroupBy(prefix, level, s.execOne(r.Context(), groupBySubquery(prefix, level, phis)))
	if qerr != nil {
		writeQueryError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// thresholdSubquery is the /v1/query translation of GET /threshold.
func thresholdSubquery(key, prefix string, hasPrefix bool, t, phi float64) query.Subquery {
	sel := query.Selection{Key: key}
	if hasPrefix {
		sel = query.Selection{Prefix: &prefix}
	}
	return query.Subquery{
		Select: sel,
		Aggregations: []query.Aggregation{
			{Op: query.OpThreshold, T: &t, Phi: &phi},
		},
	}
}

// shapeThreshold reshapes the engine result into the legacy /threshold
// body.
func shapeThreshold(key, prefix string, hasPrefix bool, res *query.Result) (map[string]any, *query.Error) {
	if res.Error != nil {
		return nil, res.Error
	}
	g := res.Groups[0]
	agg := g.Aggregations[0]
	if agg.Error != nil {
		return nil, agg.Error
	}
	th := agg.Threshold
	body := map[string]any{
		"t":     th.T,
		"phi":   th.Phi,
		"above": th.Above,
		"count": g.Count,
		"stage": th.Stage,
	}
	if hasPrefix {
		body["prefix"] = prefix
		body["merges"] = g.Keys
	} else {
		body["key"] = key
	}
	if agg.Degraded {
		body["degraded"] = true
	}
	return body, nil
}

// Deprecated: GET /threshold answers "is the φ-quantile above t?" for one
// key or prefix rollup via the cascade. It is an adapter over POST
// /v1/query; prefer the batched endpoint.
func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, prefix := q.Get("key"), q.Get("prefix")
	hasPrefix := q.Has("prefix")
	if key == "" && !hasPrefix {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "need key or prefix parameter")
		return
	}
	if key != "" && hasPrefix {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "key and prefix are mutually exclusive")
		return
	}
	t, err := parseFloat(q, "t", math.NaN())
	if err != nil || math.IsNaN(t) {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "missing or invalid t parameter")
		return
	}
	phi, err := parseFloat(q, "phi", query.DefaultThresholdPhi)
	if err != nil || math.IsNaN(phi) || phi < 0 || phi > 1 {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "phi must be in [0,1]")
		return
	}

	res := s.execOne(r.Context(), thresholdSubquery(key, prefix, hasPrefix, t, phi))
	body, qerr := shapeThreshold(key, prefix, hasPrefix, res)
	if qerr != nil {
		writeQueryError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
