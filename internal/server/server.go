package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/maxent"
	"repro/internal/shard"
)

// DefaultMaxBodyBytes caps ingest request bodies (32 MiB).
const DefaultMaxBodyBytes = 32 << 20

// restoreBodyFactor scales the ingest body cap up for /restore: snapshots
// are ~200 bytes per key, so the default 32 MiB × 32 = 1 GiB admits stores
// of ~5M keys while still bounding the staging memory a single request can
// pin.
const restoreBodyFactor = 32

// defaultPhis are the quantiles reported when a query names none.
var defaultPhis = []float64{0.5, 0.9, 0.99}

// Server is the HTTP front end of a shard.Store. It implements
// http.Handler; construct with New.
type Server struct {
	store   *shard.Store
	mux     *http.ServeMux
	sep     string
	maxBody int64
	solver  maxent.Options
	start   time.Time

	batches sync.Pool

	statsMu      sync.Mutex
	cascadeStats cascade.Stats
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithKeySeparator sets the segment separator used by /merge group-bys
// (default ".").
func WithKeySeparator(sep string) ServerOption {
	return func(s *Server) { s.sep = sep }
}

// WithMaxBodyBytes caps the accepted request body size.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) { s.maxBody = n }
}

// WithSolverOptions sets the maximum-entropy solver options used for
// estimates over merged (rollup) sketches.
func WithSolverOptions(o maxent.Options) ServerOption {
	return func(s *Server) { s.solver = o }
}

// New wires a Server around store.
func New(store *shard.Store, opts ...ServerOption) *Server {
	s := &Server{
		store:   store,
		mux:     http.NewServeMux(),
		sep:     ".",
		maxBody: DefaultMaxBodyBytes,
		start:   time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.batches.New = func() any { return store.NewBatch() }

	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /quantile", s.handleQuantile)
	s.mux.HandleFunc("GET /merge", s.handleMerge)
	s.mux.HandleFunc("GET /threshold", s.handleThreshold)
	s.mux.HandleFunc("GET /keys", s.handleKeys)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /restore", s.handleRestore)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// wireObservation is the ingest wire shape. Value is a pointer so a
// missing or misspelled "value" field is an error rather than a silently
// ingested zero.
type wireObservation struct {
	Key   string   `json:"key"`
	Value *float64 `json:"value"`
}

func (o wireObservation) check() error {
	if o.Key == "" {
		return errors.New("missing key")
	}
	if len(o.Key) > shard.MaxKeyLen {
		return fmt.Errorf("key exceeds %d bytes", shard.MaxKeyLen)
	}
	if o.Value == nil {
		return errors.New("missing value")
	}
	if math.IsNaN(*o.Value) || math.IsInf(*o.Value, 0) {
		return errors.New("value must be finite")
	}
	return nil
}

// ingestRequest is the enveloped JSON body shape; a bare array of
// observations is accepted too.
type ingestRequest struct {
	Observations []wireObservation `json:"observations"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	batch := s.batches.Get().(*shard.Batch)
	defer func() {
		// A rejected request must not mutate the store: drop whatever was
		// buffered before the error. After a successful Flush this is a
		// no-op, and either way the pooled batch goes back clean.
		batch.Discard()
		s.batches.Put(batch)
	}()

	ct := r.Header.Get("Content-Type")
	var err error
	if strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "text/plain") {
		err = decodeNDJSON(body, batch)
	} else {
		err = decodeJSONBody(body, batch)
	}
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n := batch.Flush()
	writeJSON(w, http.StatusOK, map[string]any{"ingested": n})
}

// decodeJSONBody accepts {"observations":[...]} or a bare [...] array.
func decodeJSONBody(r io.Reader, batch *shard.Batch) error {
	br := bufio.NewReader(r)
	first, err := firstNonSpace(br)
	if err != nil {
		return errors.New("empty body")
	}
	dec := json.NewDecoder(br)
	var obs []wireObservation
	if first == '[' {
		if err := dec.Decode(&obs); err != nil {
			return fmt.Errorf("decoding observation array: %w", err)
		}
	} else {
		var req ingestRequest
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("decoding ingest request: %w", err)
		}
		obs = req.Observations
	}
	for i, o := range obs {
		if err := o.check(); err != nil {
			return fmt.Errorf("observation %d: %w", i, err)
		}
		batch.Add(o.Key, *o.Value)
	}
	return nil
}

// decodeNDJSON accepts one {"key":...,"value":...} object per line. The
// line buffer leaves headroom above MaxKeyLen so a maximum-length key is
// rejected by the same key-length check as the JSON-array path, not by an
// opaque scanner error.
func decodeNDJSON(r io.Reader, batch *shard.Batch) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), shard.MaxKeyLen+64*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var o wireObservation
		if err := json.Unmarshal([]byte(text), &o); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := o.check(); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		batch.Add(o.Key, *o.Value)
	}
	return sc.Err()
}

func firstNonSpace(br *bufio.Reader) (byte, error) {
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		return c, nil
	}
}

// quantilePoint is one (φ, estimate) pair in a response.
type quantilePoint struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	phis, err := parsePhis(q["q"])
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sk, ok := s.store.Sketch(key)
	if !ok || sk.IsEmpty() {
		writeError(w, http.StatusNotFound, "no such key: %q", key)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":       key,
		"count":     sk.Count,
		"min":       sk.Min,
		"max":       sk.Max,
		"mean":      sk.Mean(),
		"quantiles": s.quantilePoints(sk, phis),
	})
}

// quantilePoints estimates every requested quantile from one solve with the
// server's solver options, falling back to rank-bound inversion per φ when
// the solver cannot converge (the solve is not retried per φ).
func (s *Server) quantilePoints(sk *core.Sketch, phis []float64) []quantilePoint {
	out := make([]quantilePoint, len(phis))
	sol, err := maxent.SolveSketch(sk, s.solver)
	for i, phi := range phis {
		var v float64
		if err == nil {
			v = sol.Quantile(phi)
		} else {
			v = bounds.InvertRTT(sk, phi)
		}
		out[i] = quantilePoint{Q: phi, Value: v}
	}
	return out
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, prefix := q.Get("key"), q.Get("prefix")
	if key == "" && !q.Has("prefix") {
		writeError(w, http.StatusBadRequest, "need key or prefix parameter")
		return
	}
	if key != "" && q.Has("prefix") {
		writeError(w, http.StatusBadRequest, "key and prefix are mutually exclusive")
		return
	}
	t, err := parseFloat(q, "t", math.NaN())
	if err != nil || math.IsNaN(t) {
		writeError(w, http.StatusBadRequest, "missing or invalid t parameter")
		return
	}
	phi, err := parseFloat(q, "phi", 0.99)
	if err != nil || math.IsNaN(phi) || phi < 0 || phi > 1 {
		writeError(w, http.StatusBadRequest, "phi must be in [0,1]")
		return
	}

	var sk *core.Sketch
	scope := map[string]any{}
	if key != "" {
		var ok bool
		sk, ok = s.store.Sketch(key)
		if !ok {
			writeError(w, http.StatusNotFound, "no such key: %q", key)
			return
		}
		scope["key"] = key
	} else {
		var merges int
		sk, merges, err = s.store.MergePrefix(prefix)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if merges == 0 {
			writeError(w, http.StatusNotFound, "no keys with prefix %q", prefix)
			return
		}
		scope["prefix"] = prefix
		scope["merges"] = merges
	}

	cfg := cascade.Full()
	cfg.Solver = s.solver
	var st cascade.Stats
	above, err := cascade.Threshold(sk, t, phi, cfg, &st)
	if errors.Is(err, core.ErrEmpty) {
		writeError(w, http.StatusNotFound, "no data in scope")
		return
	}
	s.foldCascadeStats(&st)

	resp := map[string]any{
		"t":     t,
		"phi":   phi,
		"above": above,
		"count": sk.Count,
		"stage": resolvedStage(&st),
	}
	for k, v := range scope {
		resp[k] = v
	}
	if err != nil {
		// The cascade still decided via guaranteed bounds; surface that the
		// solver did not converge rather than failing the query.
		resp["degraded"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolvedStage names the cascade stage that settled the last query
// recorded in st (which tracked exactly one query).
func resolvedStage(st *cascade.Stats) string {
	for stage := cascade.Stage(0); stage < cascade.NumStages; stage++ {
		if st.Resolved[stage] > 0 {
			return stage.String()
		}
	}
	return "?"
}

func (s *Server) foldCascadeStats(st *cascade.Stats) {
	s.statsMu.Lock()
	s.cascadeStats.Queries += st.Queries
	for i := range st.Resolved {
		s.cascadeStats.Resolved[i] += st.Resolved[i]
		s.cascadeStats.Time[i] += st.Time[i]
	}
	s.statsMu.Unlock()
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	keys := s.store.Keys(r.URL.Query().Get("prefix"))
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.statsMu.Lock()
	cs := s.cascadeStats
	s.statsMu.Unlock()
	resolved := map[string]int{}
	for stage := cascade.Stage(0); stage < cascade.NumStages; stage++ {
		resolved[stage.String()] = cs.Resolved[stage]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":           s.store.Len(),
		"observations":   s.store.TotalCount(),
		"shards":         s.store.NumShards(),
		"order":          s.store.Order(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"cascade": map[string]any{
			"queries":  cs.Queries,
			"resolved": resolved,
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=momentsd.snapshot")
	if err := s.store.Snapshot(w); err != nil {
		// Headers are gone; the client sees a truncated stream and the
		// Restore side will reject it.
		return
	}
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	// Restore validates the whole stream — including its trailer — into a
	// staging area before touching the store, so the body cap (scaled well
	// above the ingest limit, since snapshots run ~200 bytes per key) also
	// bounds the memory one request can pin.
	body := http.MaxBytesReader(w, r.Body, s.maxBody*restoreBodyFactor)
	if err := s.store.Restore(body); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":         s.store.Len(),
		"observations": s.store.TotalCount(),
	})
}

// parsePhis parses repeated and/or comma-separated q parameters into
// quantile fractions, defaulting to defaultPhis.
func parsePhis(params []string) ([]float64, error) {
	var out []float64
	for _, p := range params {
		for _, tok := range strings.Split(p, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
				return nil, fmt.Errorf("invalid quantile fraction %q", tok)
			}
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), defaultPhis...), nil
	}
	if len(out) > 64 {
		return nil, fmt.Errorf("too many quantile fractions (%d > 64)", len(out))
	}
	return out, nil
}

func parseFloat(q map[string][]string, name string, def float64) (float64, error) {
	vals := q[name]
	if len(vals) == 0 || vals[0] == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(vals[0], 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s parameter %q", name, vals[0])
	}
	return v, nil
}
