package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cascade"
	"repro/internal/maxent"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/wal"
)

// DefaultMaxBodyBytes caps ingest and /v1/query request bodies (32 MiB).
const DefaultMaxBodyBytes = 32 << 20

// restoreBodyFactor scales the ingest body cap up for /restore: snapshots
// are ~200 bytes per key, so the default 32 MiB × 32 = 1 GiB admits stores
// of ~5M keys while still bounding the staging memory a single request can
// pin.
const restoreBodyFactor = 32

// Server is the HTTP front end of a shard.Store. All query endpoints are
// thin adapters over one internal/query Engine: POST /v1/query exposes it
// directly; the legacy GET endpoints translate to single-subquery batches.
// It implements http.Handler; construct with New.
type Server struct {
	store      *shard.Store
	engine     *query.Engine
	mux        *http.ServeMux
	sep        string
	maxBody    int64
	solver     maxent.Options
	workers    int
	solveCache int
	start      time.Time

	batches sync.Pool

	// Buffered ingest (see WithIngestBuffer): flusher is nil when disabled.
	// handles is a fixed-size pool of thread-local ingest handles; requests
	// beyond its capacity fall back to transient handles that are closed at
	// request end, so the flusher's registry stays bounded. flushEachRequest
	// marks request-scoped mode: the handle drains before the request is
	// acknowledged, so an ack implies visibility.
	bufferCfg        *shard.FlusherConfig
	flusher          *shard.Flusher
	handles          chan *shard.Local
	flushEachRequest bool

	// Write-ahead log (see WithWAL): walLog is nil when durability is
	// off. afterRestore runs after a successful /restore so the caller
	// can checkpoint — without it, stale log records would replay over
	// the restored contents on the next boot.
	walLog       *wal.Log
	afterRestore func() error
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithKeySeparator sets the segment separator used by group-by selections
// (default ".").
func WithKeySeparator(sep string) ServerOption {
	return func(s *Server) { s.sep = sep }
}

// WithMaxBodyBytes caps the accepted request body size.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) { s.maxBody = n }
}

// WithSolverOptions sets the maximum-entropy solver options used for
// estimates.
func WithSolverOptions(o maxent.Options) ServerOption {
	return func(s *Server) { s.solver = o }
}

// WithQueryWorkers bounds the query engine's executor concurrency
// (default GOMAXPROCS).
func WithQueryWorkers(n int) ServerOption {
	return func(s *Server) { s.workers = n }
}

// WithSolveCache bounds the engine's cross-request solve cache to n
// resolved selections (default query.DefaultSolveCacheSize; n <= 0
// disables it). Hit/miss/eviction counters are surfaced on /stats and
// /v1/stats.
func WithSolveCache(n int) ServerOption {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.solveCache = n
	}
}

// WithIngestBuffer enables thread-local buffered ingest: /ingest requests
// accumulate into per-handle local summaries outside the store's stripe
// locks and merge in on flush (see shard.NewFlusher). With a zero
// FlushInterval the handle is flushed before each request is acknowledged
// (an ack implies visibility); with a positive interval observations may
// stay buffered across requests — the response carries "buffered": true —
// and cfg.Stale additionally lets queries skip the drain barrier for
// bounded-staleness reads. New panics if the store already has a flusher
// attached.
func WithIngestBuffer(cfg shard.FlusherConfig) ServerOption {
	return func(s *Server) { s.bufferCfg = &cfg }
}

// WithWAL surfaces an attached write-ahead log on the server: ingest
// errors from the journal map to 503 with the typed unavailable envelope,
// /v1/stats gains a "wal" section, and afterRestore (may be nil) runs
// after every successful /restore — momentsd passes its checkpoint-save,
// so a restore immediately re-snapshots and truncates the log instead of
// leaving stale records to replay over the restored state. The caller
// must also attach the log to the store (shard.Store.SetJournal); this
// option only wires the HTTP surfaces.
func WithWAL(l *wal.Log, afterRestore func() error) ServerOption {
	return func(s *Server) {
		s.walLog = l
		s.afterRestore = afterRestore
	}
}

// New wires a Server around store.
func New(store *shard.Store, opts ...ServerOption) *Server {
	s := &Server{
		store:      store,
		mux:        http.NewServeMux(),
		sep:        ".",
		maxBody:    DefaultMaxBodyBytes,
		solveCache: query.DefaultSolveCacheSize,
		start:      time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.engine = query.NewEngine(store, query.Config{
		Separator:  s.sep,
		Solver:     s.solver,
		Workers:    s.workers,
		SolveCache: s.solveCache,
	})
	s.batches.New = func() any { return store.NewBatch() }
	if s.bufferCfg != nil {
		f, err := shard.NewFlusher(store, *s.bufferCfg)
		if err != nil {
			panic(fmt.Sprintf("server: attaching ingest buffer: %v", err))
		}
		s.flusher = f
		s.flushEachRequest = s.bufferCfg.FlushInterval == 0
		n := 4 * runtime.GOMAXPROCS(0)
		s.handles = make(chan *shard.Local, n)
		for i := 0; i < n; i++ {
			s.handles <- f.Handle()
		}
	}

	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/query", s.handleQueryV1)
	s.mux.HandleFunc("POST /v1/partials", s.handlePartialsV1)
	s.mux.HandleFunc("POST /v1/windows", s.handleWindowsV1)
	// Deprecated single-shot query endpoints, kept as adapters over the
	// same engine; prefer POST /v1/query.
	s.mux.HandleFunc("GET /quantile", s.handleQuantile)
	s.mux.HandleFunc("GET /merge", s.handleMerge)
	s.mux.HandleFunc("GET /threshold", s.handleThreshold)
	s.mux.HandleFunc("GET /keys", s.handleKeys)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /restore", s.handleRestore)
	return s
}

// Engine exposes the server's query engine, e.g. for embedding callers
// that want to bypass HTTP.
func (s *Server) Engine() *query.Engine { return s.engine }

// Flusher exposes the attached buffered-ingest coordinator (nil when the
// server was built without WithIngestBuffer).
func (s *Server) Flusher() *shard.Flusher { return s.flusher }

// Close drains and detaches the buffered-ingest flusher, if any. Call it
// after the HTTP server has shut down so no buffered observation outlives
// the process unflushed.
func (s *Server) Close() error {
	if s.flusher == nil {
		return nil
	}
	return s.flusher.Close()
}

// getHandle returns a pooled ingest handle, or a transient one (with
// transient=true) when the pool is exhausted under burst concurrency.
func (s *Server) getHandle() (h *shard.Local, transient bool) {
	select {
	case h := <-s.handles:
		return h, false
	default:
		return s.flusher.Handle(), true
	}
}

// putHandle returns a pooled handle; transient handles are flushed and
// unregistered instead so the flusher's registry stays bounded.
func (s *Server) putHandle(h *shard.Local, transient bool) {
	if transient {
		h.Close()
		return
	}
	s.handles <- h
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits the structured {code, message} error envelope shared by
// every endpoint.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]any{
		"error": &query.Error{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// writeQueryError maps a query error onto its HTTP status (not_found →
// 404, not_converged → 422, deadline_exceeded → 504, ...).
func writeQueryError(w http.ResponseWriter, err *query.Error) {
	writeJSON(w, err.HTTPStatus(), map[string]any{"error": err})
}

// wireObservation is the ingest wire shape. Value is a pointer so a
// missing or misspelled "value" field is an error rather than a silently
// ingested zero. TS is the optional observation instant in (possibly
// fractional) unix seconds; absent means "now". On windowed stores it
// selects the time pane the value lands in; timeless stores ignore it.
type wireObservation struct {
	Key   string   `json:"key"`
	Value *float64 `json:"value"`
	TS    *float64 `json:"ts,omitempty"`
}

func (o wireObservation) check() error {
	if o.Key == "" {
		return errors.New("missing key")
	}
	if len(o.Key) > shard.MaxKeyLen {
		return fmt.Errorf("key exceeds %d bytes", shard.MaxKeyLen)
	}
	if o.Value == nil {
		return errors.New("missing value")
	}
	if math.IsNaN(*o.Value) || math.IsInf(*o.Value, 0) {
		return errors.New("value must be finite")
	}
	if o.TS != nil && !(*o.TS >= 0 && *o.TS <= maxIngestTS) {
		return errors.New("ts must be a unix timestamp in seconds (is it in milliseconds?)")
	}
	return nil
}

// maxIngestTS bounds the accepted observation timestamp (9e9 s ≈ year
// 2255, safely under math.MaxInt64 nanoseconds ≈ 9.22e9 s). A
// millisecond- or microsecond-unit timestamp — the classic client bug —
// lands far above it and is rejected with a hint, rather than overflowing
// the nanosecond conversion in at() into a negative instant that every
// pane silently drops. The comparison form also rejects NaN.
const maxIngestTS = 9e9

// at converts the optional wire timestamp; the zero time means "stamp at
// flush".
func (o wireObservation) at() time.Time {
	if o.TS == nil {
		return time.Time{}
	}
	return time.Unix(0, int64(*o.TS*float64(time.Second)))
}

// ingestRequest is the enveloped JSON body shape; a bare array of
// observations is accepted too.
type ingestRequest struct {
	Observations []wireObservation `json:"observations"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	batch := s.batches.Get().(*shard.Batch)
	defer func() {
		// A rejected request must not mutate the store: drop whatever was
		// buffered before the error. After a successful Flush this is a
		// no-op, and either way the pooled batch goes back clean.
		batch.Discard()
		s.batches.Put(batch)
	}()

	ct := r.Header.Get("Content-Type")
	var err error
	if strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "text/plain") {
		err = decodeNDJSON(body, batch)
	} else {
		err = decodeJSONBody(body, batch)
	}
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "%v", err)
		return
	}
	if s.flusher == nil {
		// Commit is Flush plus write-ahead logging when the store has a
		// journal: the batch is durable before it is applied or
		// acknowledged.
		n, err := batch.Commit()
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, query.CodeUnavailable,
				"observation log unavailable: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ingested": n})
		return
	}
	// Buffered path: the fully validated batch moves into a thread-local
	// handle (per-key O(k) accumulation outside the stripe locks). The
	// batch is the atomicity seam — a decode error above Discards it
	// without ever touching a handle that may hold previously acknowledged
	// cross-request data. CommitBatch additionally write-ahead logs the
	// batch before absorbing it when the store has a journal.
	h, transient := s.getHandle()
	n, err := h.CommitBatch(batch)
	if err != nil {
		s.putHandle(h, transient)
		writeError(w, http.StatusServiceUnavailable, query.CodeUnavailable,
			"observation log unavailable: %v", err)
		return
	}
	if s.flushEachRequest {
		h.Flush()
	}
	s.putHandle(h, transient)
	resp := map[string]any{"ingested": n}
	if !s.flushEachRequest {
		resp["buffered"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeJSONBody accepts {"observations":[...]} or a bare [...] array.
func decodeJSONBody(r io.Reader, batch *shard.Batch) error {
	br := bufio.NewReader(r)
	first, err := firstNonSpace(br)
	if err != nil {
		return errors.New("empty body")
	}
	dec := json.NewDecoder(br)
	var obs []wireObservation
	if first == '[' {
		if err := dec.Decode(&obs); err != nil {
			return fmt.Errorf("decoding observation array: %w", err)
		}
	} else {
		var req ingestRequest
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("decoding ingest request: %w", err)
		}
		obs = req.Observations
	}
	for i, o := range obs {
		if err := o.check(); err != nil {
			return fmt.Errorf("observation %d: %w", i, err)
		}
		batch.AddAt(o.Key, *o.Value, o.at())
	}
	return nil
}

// lineBufPool recycles the NDJSON scanner's initial line buffers across
// requests, so steady-state ingest pays no per-request buffer allocation.
// The scanner grows past 64 KiB only for oversized lines (huge keys); the
// pooled original stays reusable either way.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// decodeNDJSON accepts one {"key":...,"value":...} object per line. The
// line buffer leaves headroom above MaxKeyLen so a maximum-length key is
// rejected by the same key-length check as the JSON-array path, not by an
// opaque scanner error.
//
// This is the ingest hot path, tuned to avoid per-observation allocations:
// lines are decoded straight from the scanner's byte view (no intermediate
// string), and the value field decodes into one reused float via a NaN
// sentinel — JSON cannot express NaN, so a sentinel still in place after
// decoding means the field was absent, which reports the same "missing
// value" error as the enveloped path. Only the key string (retained by the
// batch) and an explicit ts allocate per observation.
func decodeNDJSON(r io.Reader, batch *shard.Batch) error {
	sc := bufio.NewScanner(r)
	bufp := lineBufPool.Get().(*[]byte)
	defer lineBufPool.Put(bufp)
	sc.Buffer(*bufp, shard.MaxKeyLen+64*1024)
	line := 0
	var (
		o   wireObservation
		val float64
	)
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		val = math.NaN()
		o = wireObservation{Value: &val} // resets Key and TS; reuses val
		if err := json.Unmarshal(text, &o); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if o.Value != nil && math.IsNaN(*o.Value) {
			o.Value = nil // sentinel untouched: the value field was absent
		}
		if err := o.check(); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		batch.AddAt(o.Key, *o.Value, o.at())
	}
	return sc.Err()
}

// decodeWireObservations decodes an ingest body into wire observations
// without a backing store batch — the coordinator path, which re-marshals
// each observation for its owning node. It dispatches on Content-Type
// exactly like the single-node /ingest: NDJSON (or text/plain) decodes one
// object per line, anything else as a bare array or an {"observations":…}
// envelope. Every observation is validated; a rejected body yields nil.
func decodeWireObservations(r io.Reader, contentType string) ([]wireObservation, error) {
	if strings.HasPrefix(contentType, "application/x-ndjson") || strings.HasPrefix(contentType, "text/plain") {
		sc := bufio.NewScanner(r)
		bufp := lineBufPool.Get().(*[]byte)
		defer lineBufPool.Put(bufp)
		sc.Buffer(*bufp, shard.MaxKeyLen+64*1024)
		var obs []wireObservation
		line := 0
		for sc.Scan() {
			line++
			text := bytes.TrimSpace(sc.Bytes())
			if len(text) == 0 {
				continue
			}
			var o wireObservation
			if err := json.Unmarshal(text, &o); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if err := o.check(); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			obs = append(obs, o)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return obs, nil
	}
	br := bufio.NewReader(r)
	first, err := firstNonSpace(br)
	if err != nil {
		return nil, errors.New("empty body")
	}
	dec := json.NewDecoder(br)
	var obs []wireObservation
	if first == '[' {
		if err := dec.Decode(&obs); err != nil {
			return nil, fmt.Errorf("decoding observation array: %w", err)
		}
	} else {
		var req ingestRequest
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding ingest request: %w", err)
		}
		obs = req.Observations
	}
	for i := range obs {
		if err := obs[i].check(); err != nil {
			return nil, fmt.Errorf("observation %d: %w", i, err)
		}
	}
	return obs, nil
}

func firstNonSpace(br *bufio.Reader) (byte, error) {
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		return c, nil
	}
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	keys := s.store.Keys(r.URL.Query().Get("prefix"))
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
}

// handleStats serves both GET /stats and its alias GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.engine.CascadeStats()
	resolved := map[string]int{}
	for stage := cascade.Stage(0); stage < cascade.NumStages; stage++ {
		resolved[stage.String()] = cs.Resolved[stage]
	}
	b := s.store.Backend()
	ingestBuffer := map[string]any{"enabled": false}
	if s.flusher != nil {
		fs := s.flusher.Stats()
		ingestBuffer = map[string]any{
			"enabled":                true,
			"handles":                fs.Handles,
			"pending":                fs.Pending,
			"flushes":                fs.Flushes,
			"flushed_obs":            fs.FlushedObs,
			"drains":                 fs.Drains,
			"stale":                  fs.Stale,
			"flush_size":             fs.FlushSize,
			"flush_interval_seconds": fs.FlushInterval.Seconds(),
			"flush_each_request":     s.flushEachRequest,
		}
	}
	walSection := any(map[string]any{"enabled": false})
	if s.walLog != nil {
		walSection = struct {
			Enabled bool `json:"enabled"`
			wal.Stats
		}{true, s.walLog.Stats()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":           s.store.Len(),
		"observations":   s.store.TotalCount(),
		"shards":         s.store.NumShards(),
		"order":          s.store.Order(),
		"backend":        b.Fingerprint(),
		"backend_caps":   b.Caps,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"cascade": map[string]any{
			"queries":  cs.Queries,
			"resolved": resolved,
		},
		"solve_cache":   s.engine.CacheStats(),
		"ingest_buffer": ingestBuffer,
		"read_path":     s.store.ReadStats(),
		"wal":           walSection,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=momentsd.snapshot")
	if err := s.store.Snapshot(w); err != nil {
		// Headers are gone; the client sees a truncated stream and the
		// Restore side will reject it.
		return
	}
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	// Restore validates the whole stream — including its trailer — into a
	// staging area before touching the store, so the body cap (scaled well
	// above the ingest limit, since snapshots run ~200 bytes per key) also
	// bounds the memory one request can pin.
	body := http.MaxBytesReader(w, r.Body, s.maxBody*restoreBodyFactor)
	if err := s.store.Restore(body); err != nil {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "%v", err)
		return
	}
	if s.afterRestore != nil {
		// Checkpoint the write-ahead log against the restored contents;
		// stale pre-restore records must not replay over them next boot.
		if err := s.afterRestore(); err != nil {
			writeError(w, http.StatusInternalServerError, query.CodeInternal,
				"store restored, but checkpointing the observation log failed (restored data is not yet crash-durable): %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":         s.store.Len(),
		"observations": s.store.TotalCount(),
	})
}

// parsePhis parses repeated and/or comma-separated q parameters into
// quantile fractions, defaulting to query.DefaultPhis.
func parsePhis(params []string) ([]float64, error) {
	var out []float64
	for _, p := range params {
		for _, tok := range strings.Split(p, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
				return nil, fmt.Errorf("invalid quantile fraction %q", tok)
			}
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), query.DefaultPhis...), nil
	}
	if len(out) > 64 {
		return nil, fmt.Errorf("too many quantile fractions (%d > 64)", len(out))
	}
	return out, nil
}

func parseFloat(q map[string][]string, name string, def float64) (float64, error) {
	vals := q[name]
	if len(vals) == 0 || vals[0] == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(vals[0], 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s parameter %q", name, vals[0])
	}
	return v, nil
}
