package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sketch"
)

// newBackendServer wires a store on the given backend behind an httptest
// server.
func newBackendServer(t *testing.T, b sketch.Backend) (*shard.Store, *httptest.Server) {
	t.Helper()
	store := shard.New(shard.WithShards(4), shard.WithBackend(b))
	ts := httptest.NewServer(New(store))
	t.Cleanup(ts.Close)
	return store, ts
}

// ingestNDJSON posts one observation per line, preserving order.
func ingestNDJSON(t *testing.T, url string, obs []shard.Observation) {
	t.Helper()
	var sb strings.Builder
	for _, o := range obs {
		fmt.Fprintf(&sb, `{"key":%q,"value":%g}`+"\n", o.Key, o.Value)
	}
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
}

func queryQuantiles(t *testing.T, url string, sel query.Selection, phis []float64) query.Result {
	t.Helper()
	var out query.Response
	resp := postObj(t, url+"/v1/query", query.Request{Queries: []query.Subquery{{
		Select:       sel,
		Aggregations: []query.Aggregation{{Op: query.OpQuantiles, Phis: phis}},
	}}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query returned %s", resp.Status)
	}
	return out.Results[0]
}

// TestBackendServeEndToEnd is the acceptance path for non-moments serving:
// HTTP ingest → /v1/query quantiles → GET /snapshot (v3) → POST /restore
// into a fresh server → identical query answers. Results are pinned against
// the internal/sketch reference implementations: exactly for the
// deterministic t-digest, to sample-rank tolerance for the seeded Merge12 —
// and byte-exactly across the snapshot round trip for both.
func TestBackendServeEndToEnd(t *testing.T) {
	for _, b := range []sketch.Backend{sketch.Merge12Backend(64), sketch.TDigestBackend(100)} {
		t.Run(b.Name, func(t *testing.T) {
			_, srv := newBackendServer(t, b)
			rng := rand.New(rand.NewPCG(91, 92))
			var obs []shard.Observation
			values := map[string][]float64{}
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("us.svc%d", i%3)
				v := math.Exp(rng.NormFloat64())
				obs = append(obs, shard.Observation{Key: key, Value: v})
				values[key] = append(values[key], v)
			}
			ingestNDJSON(t, srv.URL, obs)

			// Reference implementation fed the same per-key streams in
			// ingestion order.
			refs := map[string]sketch.Serving{}
			for _, o := range obs {
				ref, ok := refs[o.Key]
				if !ok {
					ref = b.New()
					refs[o.Key] = ref
				}
				ref.Add(o.Value)
			}

			phis := []float64{0.1, 0.5, 0.9, 0.99}
			check := func(t *testing.T, url, when string) map[string][]float64 {
				answers := map[string][]float64{}
				for key, data := range values {
					res := queryQuantiles(t, url, query.Selection{Key: key}, phis)
					if res.Error != nil {
						t.Fatalf("%s %s: %v", when, key, res.Error)
					}
					g := res.Groups[0]
					if g.Backend != b.Name {
						t.Errorf("%s %s: group backend %q, want %q", when, key, g.Backend, b.Name)
					}
					if g.Count != float64(len(data)) {
						t.Errorf("%s %s: count %v, want %d", when, key, g.Count, len(data))
					}
					sorted := append([]float64(nil), data...)
					sort.Float64s(sorted)
					for _, qp := range g.Aggregations[0].Quantiles {
						answers[key] = append(answers[key], qp.Value)
						if r := sampleRankOf(sorted, qp.Value); math.Abs(r-qp.Q) > 0.06 {
							t.Errorf("%s %s: q(%v) = %v has sample rank %v", when, key, qp.Q, qp.Value, r)
						}
						if b.Name == "tdigest" {
							// Deterministic backend: the served estimate must
							// equal the reference implementation's exactly.
							if want := refs[key].Quantile(qp.Q); qp.Value != want {
								t.Errorf("%s %s: q(%v) = %v, reference %v", when, key, qp.Q, qp.Value, want)
							}
						}
					}
				}
				return answers
			}
			before := check(t, srv.URL, "pre-restore")

			// Snapshot over HTTP and restore into a fresh same-backend server.
			snap, err := http.Get(srv.URL + "/snapshot")
			if err != nil {
				t.Fatal(err)
			}
			var blob bytes.Buffer
			_, err = blob.ReadFrom(snap.Body)
			snap.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			_, srv2 := newBackendServer(t, b)
			resp, err := http.Post(srv2.URL+"/restore", "application/octet-stream", bytes.NewReader(blob.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("restore returned %s", resp.Status)
			}
			after := check(t, srv2.URL, "post-restore")

			// The codec serializes complete summary state, so the restored
			// server's answers must be identical, not merely close.
			for key, want := range before {
				got := after[key]
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("key %s phi=%v: post-restore %v, pre-restore %v", key, phis[i], got[i], want[i])
					}
				}
			}
		})
	}
}

func sampleRankOf(sorted []float64, x float64) float64 {
	return float64(sort.SearchFloat64s(sorted, x)) / float64(len(sorted))
}

// TestBackendStatsEcho: /v1/stats (and legacy /stats) must name the serving
// backend and its capability flags.
func TestBackendStatsEcho(t *testing.T) {
	_, srv := newBackendServer(t, sketch.TDigestBackend(200))
	for _, path := range []string{"/stats", "/v1/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Backend string      `json:"backend"`
			Caps    sketch.Caps `json:"backend_caps"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if out.Backend != "tdigest(c=200)" {
			t.Errorf("%s backend = %q, want tdigest(c=200)", path, out.Backend)
		}
		if out.Caps.Sub || out.Caps.Cascade || !out.Caps.Snapshot {
			t.Errorf("%s backend_caps = %+v", path, out.Caps)
		}
	}
}

// TestBackendRestoreMismatchHTTP: restoring a snapshot from a differently
// backed server must fail with a 400 and a clear message.
func TestBackendRestoreMismatchHTTP(t *testing.T) {
	_, tdSrv := newBackendServer(t, sketch.TDigestBackend(100))
	ingestNDJSON(t, tdSrv.URL, []shard.Observation{{Key: "k", Value: 1}})
	snap, err := http.Get(tdSrv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	_, err = blob.ReadFrom(snap.Body)
	snap.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	_, m12Srv := newBackendServer(t, sketch.Merge12Backend(64))
	resp, err := http.Post(m12Srv.URL+"/restore", "application/octet-stream", bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-backend restore returned %s, want 400", resp.Status)
	}
	var envelope struct {
		Error *query.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
		t.Fatalf("no error envelope: %v", err)
	}
	if !strings.Contains(envelope.Error.Message, "does not match store backend") {
		t.Errorf("error message %q does not explain the backend mismatch", envelope.Error.Message)
	}
}

// TestBackendWindowsEndpointGuard: the /v1/windows cascade scan is
// moments-only and must refuse other backends with the typed code.
func TestBackendWindowsEndpointGuard(t *testing.T) {
	store := shard.New(
		shard.WithShards(2),
		shard.WithBackend(sketch.TDigestBackend(100)),
		shard.WithWindow(1e9, 8),
	)
	srv := httptest.NewServer(New(store))
	defer srv.Close()
	var envelope struct {
		Error *query.Error `json:"error"`
	}
	resp := postObj(t, srv.URL+"/v1/windows", map[string]any{"key": "k", "width": 2, "t": 1.0}, &envelope)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/v1/windows on tdigest returned %s, want 400", resp.Status)
	}
	if envelope.Error == nil || envelope.Error.Code != query.CodeBackendUnsupported {
		t.Errorf("error = %+v, want code %s", envelope.Error, query.CodeBackendUnsupported)
	}
}

// TestBackendLegacyGETAdapters pins the documented behavior of the
// deprecated GET endpoints on non-moments backends: /quantile and /merge
// translate to stats+quantiles batches (their response shapes carry
// closed-form statistics), so they answer 400 backend_unsupported; the
// /threshold adapter sends only a threshold aggregation and keeps working
// via direct evaluation.
func TestBackendLegacyGETAdapters(t *testing.T) {
	_, srv := newBackendServer(t, sketch.TDigestBackend(100))
	var obs []shard.Observation
	for i := 1; i <= 200; i++ {
		obs = append(obs, shard.Observation{Key: "us.web", Value: float64(i)})
	}
	ingestNDJSON(t, srv.URL, obs)

	for _, path := range []string{"/quantile?key=us.web&q=0.5", "/merge?prefix=us.&q=0.5"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error *query.Error `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest || envelope.Error == nil ||
			envelope.Error.Code != query.CodeBackendUnsupported {
			t.Errorf("GET %s on tdigest: status %s, error %+v; want 400 %s",
				path, resp.Status, envelope.Error, query.CodeBackendUnsupported)
		}
	}

	resp, err := http.Get(srv.URL + "/threshold?key=us.web&t=150&phi=0.5")
	if err != nil {
		t.Fatal(err)
	}
	var th struct {
		Above bool   `json:"above"`
		Stage string `json:"stage"`
	}
	err = json.NewDecoder(resp.Body).Decode(&th)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /threshold on tdigest: %s, %v", resp.Status, err)
	}
	if th.Above || th.Stage != "Direct" {
		t.Errorf("threshold = %+v, want above=false stage=Direct (p50 of 1..200 ≪ 150)", th)
	}
}

// TestBackendUnsupportedOverHTTP: a moment-structure aggregation on a
// non-moments server comes back as an isolated typed subquery error.
func TestBackendUnsupportedOverHTTP(t *testing.T) {
	_, srv := newBackendServer(t, sketch.SamplingBackend(256))
	ingestNDJSON(t, srv.URL, []shard.Observation{{Key: "k", Value: 1}})
	var out query.Response
	resp := postObj(t, srv.URL+"/v1/query", query.Request{Queries: []query.Subquery{
		{Select: query.Selection{Key: "k"}, Aggregations: []query.Aggregation{{Op: query.OpStats}}},
		{Select: query.Selection{Key: "k"}, Aggregations: []query.Aggregation{{Op: query.OpQuantiles}}},
	}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query returned %s (batch errors must stay isolated)", resp.Status)
	}
	if out.Results[0].Error == nil || out.Results[0].Error.Code != query.CodeBackendUnsupported {
		t.Errorf("stats subquery error = %+v, want %s", out.Results[0].Error, query.CodeBackendUnsupported)
	}
	if out.Results[1].Error != nil {
		t.Errorf("quantiles subquery failed: %v", out.Results[1].Error)
	}
}
