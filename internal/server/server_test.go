package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/shard"
)

func newTestServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *shard.Store) {
	t.Helper()
	store := shard.New(shard.WithShards(8))
	ts := httptest.NewServer(New(store, opts...))
	t.Cleanup(ts.Close)
	return ts, store
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return m
}

func wantStatus(t *testing.T, resp *http.Response, code int) map[string]any {
	t.Helper()
	if resp.StatusCode != code {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, code, b)
	}
	return decodeBody(t, resp)
}

func TestIngestAndQuantile(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewPCG(1, 2))
	n := 5000
	data := make([]float64, n)
	var sb strings.Builder
	sb.WriteString(`{"observations":[`)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64())
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"key":"lat","value":%g}`, data[i])
	}
	sb.WriteString("]}")

	m := wantStatus(t, postJSON(t, ts.URL+"/ingest", sb.String()), http.StatusOK)
	if m["ingested"].(float64) != float64(n) {
		t.Fatalf("ingested = %v, want %d", m["ingested"], n)
	}

	m = wantStatus(t, mustGet(t, ts.URL+"/quantile?key=lat&q=0.5,0.99"), http.StatusOK)
	if m["count"].(float64) != float64(n) {
		t.Errorf("count = %v, want %d", m["count"], n)
	}
	sort.Float64s(data)
	for _, qp := range m["quantiles"].([]any) {
		p := qp.(map[string]any)
		phi, est := p["q"].(float64), p["value"].(float64)
		rank := float64(sort.SearchFloat64s(data, est)) / float64(n)
		if math.Abs(rank-phi) > 0.05 {
			t.Errorf("phi=%v: estimate %v has sample rank %v", phi, est, rank)
		}
	}
}

func TestIngestBareArrayAndNDJSON(t *testing.T) {
	ts, store := newTestServer(t)
	m := wantStatus(t, postJSON(t, ts.URL+"/ingest",
		`[{"key":"a","value":1},{"key":"a","value":2}]`), http.StatusOK)
	if m["ingested"].(float64) != 2 {
		t.Errorf("bare array: ingested = %v, want 2", m["ingested"])
	}

	nd := "{\"key\":\"a\",\"value\":3}\n\n{\"key\":\"b\",\"value\":4}\n"
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	m = wantStatus(t, resp, http.StatusOK)
	if m["ingested"].(float64) != 2 {
		t.Errorf("ndjson: ingested = %v, want 2", m["ingested"])
	}
	if got := store.Count("a"); got != 3 {
		t.Errorf("Count(a) = %v, want 3", got)
	}
	if got := store.Count("b"); got != 1 {
		t.Errorf("Count(b) = %v, want 1", got)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	ts, store := newTestServer(t)
	cases := []string{
		``,
		`{"observations":[{"key":"","value":1}]}`,
		`{"observations":[{"key":"a","value":"x"}]}`,
		`[{"key":"a"`,
		`[{"key":"a"}]`,            // value absent entirely
		`[{"key":"a","val":12.5}]`, // misspelled value field
	}
	for _, body := range cases {
		resp := postJSON(t, ts.URL+"/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// NaN is not valid JSON, but make sure a sneaky Inf string form fails
	// rather than poisoning the store.
	resp := postJSON(t, ts.URL+"/ingest", `[{"key":"a","value":1e999}]`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing value: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// Valid observations preceding the invalid one must be discarded, not
	// partially applied — a retried request would double-count them.
	resp = postJSON(t, ts.URL+"/ingest",
		`[{"key":"a","value":1},{"key":"b","value":2},{"key":"","value":3}]`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("partial batch: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	if store.TotalCount() != 0 {
		t.Errorf("bad requests mutated the store: %v observations", store.TotalCount())
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestQuantileErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := mustGet(t, ts.URL+"/quantile?key=missing")
	wantStatus(t, resp, http.StatusNotFound)
	resp = mustGet(t, ts.URL+"/quantile")
	wantStatus(t, resp, http.StatusBadRequest)
	resp = mustGet(t, ts.URL+"/quantile?key=x&q=1.5")
	wantStatus(t, resp, http.StatusBadRequest)
}

func seedRegions(t *testing.T, ts *httptest.Server) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 8))
	byKey := map[string][]float64{}
	var lines strings.Builder
	for _, key := range []string{"us.web", "us.api", "eu.web", "eu.api"} {
		shift := 0.0
		if strings.HasPrefix(key, "eu.") {
			shift = 3
		}
		for i := 0; i < 2000; i++ {
			v := math.Exp(rng.NormFloat64()*0.5) + shift
			byKey[key] = append(byKey[key], v)
			fmt.Fprintf(&lines, "{\"key\":%q,\"value\":%g}\n", key, v)
		}
	}
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(lines.String()))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	return byKey
}

func TestMergeRollup(t *testing.T) {
	ts, _ := newTestServer(t)
	byKey := seedRegions(t, ts)

	m := wantStatus(t, mustGet(t, ts.URL+"/merge?prefix=us.&q=0.5"), http.StatusOK)
	if m["keys"].(float64) != 2 || m["merges"].(float64) != 2 {
		t.Errorf("keys/merges = %v/%v, want 2/2", m["keys"], m["merges"])
	}
	union := append(append([]float64(nil), byKey["us.web"]...), byKey["us.api"]...)
	sort.Float64s(union)
	est := m["quantiles"].([]any)[0].(map[string]any)["value"].(float64)
	rank := float64(sort.SearchFloat64s(union, est)) / float64(len(union))
	if math.Abs(rank-0.5) > 0.05 {
		t.Errorf("rollup median %v has sample rank %v", est, rank)
	}
	if m["count"].(float64) != float64(len(union)) {
		t.Errorf("rollup count = %v, want %d", m["count"], len(union))
	}

	resp := mustGet(t, ts.URL+"/merge?prefix=asia.")
	wantStatus(t, resp, http.StatusNotFound)
}

func TestMergeGroupBy(t *testing.T) {
	ts, _ := newTestServer(t)
	byKey := seedRegions(t, ts)

	// Group everything by the first key segment: expect eu and us groups,
	// with eu's median shifted up by ~3.
	m := wantStatus(t, mustGet(t, ts.URL+"/merge?groupby=0&q=0.5"), http.StatusOK)
	groups := m["groups"].([]any)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	medians := map[string]float64{}
	for _, g := range groups {
		gm := g.(map[string]any)
		name := gm["group"].(string)
		if gm["keys"].(float64) != 2 {
			t.Errorf("group %q rolled up %v keys, want 2", name, gm["keys"])
		}
		medians[name] = gm["quantiles"].([]any)[0].(map[string]any)["value"].(float64)
	}
	if _, ok := medians["us"]; !ok {
		t.Fatalf("missing us group: %v", medians)
	}
	if medians["eu"]-medians["us"] < 2 {
		t.Errorf("eu median %v should sit well above us median %v", medians["eu"], medians["us"])
	}

	// Grouping by the second segment rolls web/api across regions.
	m = wantStatus(t, mustGet(t, ts.URL+"/merge?groupby=1&q=0.9"), http.StatusOK)
	groups = m["groups"].([]any)
	if len(groups) != 2 {
		t.Fatalf("groupby=1: got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		gm := g.(map[string]any)
		name := gm["group"].(string)
		if name != "web" && name != "api" {
			t.Errorf("unexpected group %q", name)
		}
		wantCount := float64(len(byKey["us."+name]) + len(byKey["eu."+name]))
		if gm["count"].(float64) != wantCount {
			t.Errorf("group %q count = %v, want %v", name, gm["count"], wantCount)
		}
	}

	resp := mustGet(t, ts.URL+"/merge?groupby=9")
	wantStatus(t, resp, http.StatusBadRequest)
}

func TestThresholdEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)

	// Well beyond the maximum: resolved by the range filter, not degraded.
	m := wantStatus(t, mustGet(t, ts.URL+"/threshold?key=us.web&t=1e9&phi=0.99"), http.StatusOK)
	if m["above"].(bool) {
		t.Error("p99 reported above 1e9")
	}
	if m["stage"].(string) != "Simple" {
		t.Errorf("stage = %v, want Simple", m["stage"])
	}
	if _, degraded := m["degraded"]; degraded {
		t.Error("range-filter decision flagged degraded")
	}

	// Prefix-scoped threshold: eu latencies sit ~3 above zero.
	m = wantStatus(t, mustGet(t, ts.URL+"/threshold?prefix=eu.&t=1&phi=0.5"), http.StatusOK)
	if !m["above"].(bool) {
		t.Error("eu median not above 1")
	}
	if m["merges"].(float64) != 2 {
		t.Errorf("merges = %v, want 2", m["merges"])
	}

	// Cascade counters surfaced in /stats.
	m = wantStatus(t, mustGet(t, ts.URL+"/stats"), http.StatusOK)
	cascade := m["cascade"].(map[string]any)
	if cascade["queries"].(float64) < 2 {
		t.Errorf("cascade queries = %v, want ≥ 2", cascade["queries"])
	}

	for _, u := range []string{
		"/threshold?key=us.web",             // missing t
		"/threshold?t=1",                    // no scope
		"/threshold?key=a&prefix=b&t=1",     // both scopes
		"/threshold?key=us.web&t=1&phi=1.5", // bad phi
		"/threshold?key=us.web&t=1&phi=NaN", // NaN phi
	} {
		resp := mustGet(t, ts.URL+u)
		wantStatus(t, resp, http.StatusBadRequest)
	}
	resp := mustGet(t, ts.URL+"/threshold?key=missing&t=1")
	wantStatus(t, resp, http.StatusNotFound)
}

func TestKeysStatsHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	seedRegions(t, ts)
	m := wantStatus(t, mustGet(t, ts.URL+"/keys?prefix=us."), http.StatusOK)
	if m["count"].(float64) != 2 {
		t.Errorf("keys count = %v, want 2", m["count"])
	}
	m = wantStatus(t, mustGet(t, ts.URL+"/stats"), http.StatusOK)
	if m["keys"].(float64) != 4 || m["observations"].(float64) != 8000 {
		t.Errorf("stats keys/observations = %v/%v, want 4/8000", m["keys"], m["observations"])
	}
	wantStatus(t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
}

func TestSnapshotRestoreOverHTTP(t *testing.T) {
	ts, store := newTestServer(t)
	seedRegions(t, ts)
	resp := mustGet(t, ts.URL+"/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	store.Reset()
	if store.Len() != 0 {
		t.Fatal("reset failed")
	}
	resp, err = http.Post(ts.URL+"/restore", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	m := wantStatus(t, resp, http.StatusOK)
	if m["keys"].(float64) != 4 || m["observations"].(float64) != 8000 {
		t.Errorf("restored keys/observations = %v/%v, want 4/8000", m["keys"], m["observations"])
	}

	resp, err = http.Post(ts.URL+"/restore", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)
}

// TestConcurrentServerStress drives ingest and every query endpoint from
// many goroutines at once (run under -race), then checks final counts and
// quantiles against a single-threaded oracle.
func TestConcurrentServerStress(t *testing.T) {
	ts, store := newTestServer(t)
	const (
		clients   = 6
		perClient = 50
		batchSize = 40
		numKeys   = 12
	)
	streams := make([][]shard.Observation, clients)
	for c := range streams {
		rng := rand.New(rand.NewPCG(uint64(c), 13))
		obs := make([]shard.Observation, perClient*batchSize)
		for i := range obs {
			obs[i] = shard.Observation{
				Key:   fmt.Sprintf("g%d.k%d", i%3, rng.IntN(numKeys)),
				Value: math.Exp(rng.NormFloat64()),
			}
		}
		streams[c] = obs
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients*2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(obs []shard.Observation) {
			defer wg.Done()
			for start := 0; start < len(obs); start += batchSize {
				body, _ := json.Marshal(obs[start : start+batchSize])
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(streams[c])
	}
	// Query load during ingest: failures other than 404 (key not yet
	// ingested) are errors. The batched endpoint rides along — a /v1/query
	// batch always returns 200 with per-subquery errors inside.
	v1batch := `{"queries":[` +
		`{"select":{"key":"g0.k0"},"aggregations":[{"op":"quantiles","phis":[0.9]}]},` +
		`{"select":{"prefix":"g1."},"aggregations":[{"op":"stats"}]},` +
		`{"select":{"prefix":"","group_by":0},"aggregations":[{"op":"quantiles"}]},` +
		`{"select":{"prefix":"g2."},"aggregations":[{"op":"threshold","t":1,"phi":0.9}]}]}`
	done := make(chan struct{})
	var queriers sync.WaitGroup
	for qd := 0; qd < 4; qd++ {
		queriers.Add(1)
		go func(seed int) {
			defer queriers.Done()
			urls := []string{
				ts.URL + "/quantile?key=g0.k0&q=0.9",
				ts.URL + "/merge?prefix=g1.&q=0.5",
				ts.URL + "/merge?groupby=0",
				ts.URL + "/threshold?prefix=g2.&t=1&phi=0.9",
				ts.URL + "/stats",
				ts.URL + "/v1/query",
			}
			i := seed
			for {
				select {
				case <-done:
					return
				default:
				}
				url := urls[i%len(urls)]
				var resp *http.Response
				var err error
				if strings.HasSuffix(url, "/v1/query") {
					resp, err = http.Post(url, "application/json", strings.NewReader(v1batch))
				} else {
					resp, err = http.Get(url)
				}
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errc <- fmt.Errorf("query %s: status %d", url, resp.StatusCode)
					return
				}
				i++
			}
		}(qd)
	}
	wg.Wait()
	close(done)
	queriers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	oracle := map[string][]float64{}
	total := 0
	for _, obs := range streams {
		for _, o := range obs {
			oracle[o.Key] = append(oracle[o.Key], o.Value)
			total++
		}
	}
	if got := store.TotalCount(); got != float64(total) {
		t.Fatalf("TotalCount = %v, want %d", got, total)
	}
	for key, data := range oracle {
		if got := store.Count(key); got != float64(len(data)) {
			t.Errorf("Count(%q) = %v, want %d", key, got, len(data))
		}
	}
	// Spot-check a served quantile against the oracle sample.
	key := "g0.k0"
	data := oracle[key]
	sort.Float64s(data)
	m := wantStatus(t, mustGet(t, ts.URL+"/quantile?key="+key+"&q=0.9"), http.StatusOK)
	est := m["quantiles"].([]any)[0].(map[string]any)["value"].(float64)
	rank := float64(sort.SearchFloat64s(data, est)) / float64(len(data))
	if math.Abs(rank-0.9) > 0.06 {
		t.Errorf("served p90 %v has sample rank %v", est, rank)
	}
}
