package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/query"
)

// handleQueryV1 is the batched typed query endpoint: one POST carrying any
// mix of key / prefix / group-by subqueries, each with its own aggregation
// list, executed by the parallel engine with per-subquery error isolation.
func (s *Server) handleQueryV1(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req query.Request
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "decoding request: %v", err)
		return
	}
	resp, qerr := s.engine.Execute(r.Context(), &req)
	if qerr != nil {
		writeQueryError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
