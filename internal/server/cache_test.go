package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
)

// readBody returns a response's raw body for byte-identity comparisons.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; body: %s", resp.StatusCode, b)
	}
	return string(b)
}

// solveCacheCounters pulls the solve_cache object out of a stats payload.
func solveCacheCounters(t *testing.T, url string) (hits, misses float64, enabled bool) {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	m := wantStatus(t, resp, http.StatusOK)
	sc, ok := m["solve_cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats payload missing solve_cache: %v", m)
	}
	return sc["hits"].(float64), sc["misses"].(float64), sc["enabled"].(bool)
}

// TestSolveCacheHTTPInvalidation drives the solve cache through the full
// HTTP path: repeated identical /v1/query requests must be byte-identical
// and count a hit, and ingesting into a key covered by the cached selection
// must invalidate the entry (version-vector mismatch → miss) with the next
// response reflecting the new data. Counters are asserted via /v1/stats.
func TestSolveCacheHTTPInvalidation(t *testing.T) {
	ts, _ := newTestServer(t)

	var ingest strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&ingest, `{"key":"api.h%d","value":%d}`+"\n", i%4, 10+i%23)
	}
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(ingest.String()))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)

	const query = `{"queries":[{"id":"p99","select":{"prefix":"api."},
		"aggregations":[{"op":"quantiles","phis":[0.5,0.99]},{"op":"stats"}]}]}`

	first := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	hits, misses, enabled := solveCacheCounters(t, ts.URL)
	if !enabled {
		t.Fatal("solve cache disabled on a default server")
	}
	if hits != 0 || misses != 1 {
		t.Fatalf("after first query: hits=%v misses=%v", hits, misses)
	}

	second := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	if second != first {
		t.Errorf("cached response not byte-identical:\n%s\n%s", first, second)
	}
	if hits, misses, _ = solveCacheCounters(t, ts.URL); hits != 1 || misses != 1 {
		t.Fatalf("after repeat query: hits=%v misses=%v", hits, misses)
	}

	// Ingest into a covered key: the version vector moves, the cached
	// entry must not be served, and the fresh result sees the outlier.
	resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"key":"api.h1","value":1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)

	third := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	if hits, misses, _ = solveCacheCounters(t, ts.URL); hits != 1 || misses != 2 {
		t.Fatalf("after covered-key ingest: hits=%v misses=%v (stale hit?)", hits, misses)
	}
	if third == first {
		t.Error("response unchanged after ingesting an outlier into a covered key")
	}
	if !strings.Contains(third, "1e+06") && !strings.Contains(third, "1000000") {
		// The 1e6 outlier must be visible as the new max in the stats agg.
		t.Errorf("fresh response does not reflect the new data: %s", third)
	}

	// The refreshed entry serves hits again.
	readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	if hits, misses, _ = solveCacheCounters(t, ts.URL); hits != 2 || misses != 2 {
		t.Fatalf("post-invalidation refill: hits=%v misses=%v", hits, misses)
	}
}

// TestSolveCacheBufferedIngestInvalidation pins the PR-4/PR-6 interaction:
// with cross-request buffered ingest, a query's read barrier drains pending
// buffers first, the flush stamps fresh mutation versions, and the solve
// cache therefore misses instead of serving an answer that predates
// acknowledged-but-buffered observations. The cache must stay byte-stable
// while nothing is buffered, even across barrier drains.
func TestSolveCacheBufferedIngestInvalidation(t *testing.T) {
	ts, _, _ := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 1 << 20, FlushInterval: time.Hour})

	var ingest strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&ingest, `{"key":"api.h%d","value":%d}`+"\n", i%4, 10+i%23)
	}
	wantStatus(t, postNDJSON(t, ts.URL, ingest.String()), http.StatusOK)

	const query = `{"queries":[{"id":"p99","select":{"prefix":"api."},
		"aggregations":[{"op":"quantiles","phis":[0.5,0.99]},{"op":"stats"}]}]}`

	first := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	second := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	if second != first {
		t.Errorf("cached response not byte-identical with empty buffers:\n%s\n%s", first, second)
	}
	if hits, misses, _ := solveCacheCounters(t, ts.URL); hits != 1 || misses != 1 {
		t.Fatalf("after repeat query: hits=%v misses=%v", hits, misses)
	}

	// Buffer an outlier into a covered key without any explicit flush: the
	// next query must drain it, miss the cache, and surface the new max.
	m := wantStatus(t, postNDJSON(t, ts.URL, `{"key":"api.h1","value":1000000}`+"\n"), http.StatusOK)
	if m["buffered"] != true {
		t.Fatalf("outlier ingest not buffered: %v", m)
	}
	third := readBody(t, postJSON(t, ts.URL+"/v1/query", query))
	if hits, misses, _ := solveCacheCounters(t, ts.URL); hits != 1 || misses != 2 {
		t.Fatalf("after buffered covered-key ingest: hits=%v misses=%v (stale hit?)", hits, misses)
	}
	if !strings.Contains(third, "1e+06") && !strings.Contains(third, "1000000") {
		t.Errorf("fresh response does not reflect the buffered outlier: %s", third)
	}
}

// TestSolveCacheDisabled pins WithSolveCache(0): no cache, stats report it
// disabled, and queries still work.
func TestSolveCacheDisabled(t *testing.T) {
	ts, _ := newTestServer(t, WithSolveCache(0))
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"key":"a.b","value":1}`+"\n"+`{"key":"a.c","value":2}`))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	readBody(t, postJSON(t, ts.URL+"/v1/query",
		`{"queries":[{"select":{"prefix":"a."},"aggregations":[{"op":"stats"}]}]}`))
	if _, _, enabled := solveCacheCounters(t, ts.URL); enabled {
		t.Fatal("solve cache reported enabled after WithSolveCache(0)")
	}
}
