package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/maxent"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/internal/window"
)

const winEpoch = 1_700_000_000 // fixed "now" for the windowed fixtures

// Tolerances against the full re-merge oracle: the rollup itself (counts,
// closed-form moments) must match to 1e-9; solved quantiles sit behind the
// maximum-entropy solver, which amplifies last-ulp moment differences, so
// they get an estimator-level bound.
const (
	winRollupTol   = 1e-9
	winQuantileTol = 1e-6
)

// newWindowedServer builds a windowed store frozen at winEpoch plus an
// httptest server in front of it.
func newWindowedServer(t *testing.T, paneWidth time.Duration, retention int) (*shard.Store, *httptest.Server) {
	t.Helper()
	store := shard.New(
		shard.WithShards(4),
		shard.WithWindow(paneWidth, retention),
		shard.WithClock(func() time.Time { return time.Unix(winEpoch, 0) }),
	)
	ts := httptest.NewServer(New(store))
	t.Cleanup(ts.Close)
	return store, ts
}

// ingestRandomPanes POSTs a random pane stream for each key over HTTP with
// explicit ts stamps, spiking the given key over panes [spikeLo, spikeHi).
func ingestRandomPanes(t *testing.T, url string, rng *rand.Rand, keys []string,
	paneWidth time.Duration, retention, perPane int, spikeKey string, spikeLo, spikeHi int) {
	t.Helper()
	var sb strings.Builder
	for p := 0; p < retention; p++ {
		paneStart := winEpoch - int64((retention-1-p))*int64(paneWidth/time.Second)
		for _, key := range keys {
			for i := 0; i < perPane; i++ {
				v := 20 + rng.ExpFloat64()*30
				if key == spikeKey && p >= spikeLo && p < spikeHi && rng.Float64() < 0.4 {
					v = 900 + rng.ExpFloat64()*100
				}
				ts := float64(paneStart) + rng.Float64()*paneWidth.Seconds()
				fmt.Fprintf(&sb, `{"key":%q,"value":%g,"ts":%g}`+"\n", key, v, ts)
			}
		}
	}
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
}

func postObj(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// serverRawPanes extracts the moments view of a pane series (test helper).
func serverRawPanes(t *testing.T, ps *shard.PaneSeries) []*core.Sketch {
	t.Helper()
	raws, ok := ps.MomentsPanes()
	if !ok {
		t.Fatal("pane series is not moments-backed")
	}
	return raws
}

func winRelErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(1, math.Abs(want))
}

// oracleWindow re-merges panes[a:b] from scratch.
func oracleWindow(t *testing.T, panes []*core.Sketch, a, b int) *core.Sketch {
	t.Helper()
	sk := core.New(panes[0].K)
	for _, p := range panes[a:b] {
		if err := sk.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	return sk
}

// checkWindowedGroups pins every sliding-window group of a /v1/query
// response to the full re-merge oracle.
func checkWindowedGroups(t *testing.T, label string, groups []query.GroupResult, panes []*core.Sketch, width, step int) {
	t.Helper()
	wantPositions := (len(panes)-width)/step + 1
	if len(groups) != wantPositions {
		t.Fatalf("%s: %d groups, want %d", label, len(groups), wantPositions)
	}
	for gi, g := range groups {
		oracle := oracleWindow(t, panes, gi*step, gi*step+width)
		st := g.Aggregations[0].Stats
		if g.Count != oracle.Count || st.Count != oracle.Count {
			t.Fatalf("%s pos %d: count = %v, oracle %v", label, gi, g.Count, oracle.Count)
		}
		if st.Min != oracle.Min || st.Max != oracle.Max {
			t.Errorf("%s pos %d: range [%v,%v], oracle [%v,%v]", label, gi, st.Min, st.Max, oracle.Min, oracle.Max)
		}
		if d := winRelErr(st.Mean, oracle.Mean()); d > winRollupTol {
			t.Errorf("%s pos %d: mean = %v, oracle %v (rel diff %g)", label, gi, st.Mean, oracle.Mean(), d)
		}
		if d := winRelErr(st.Variance, oracle.Variance()); d > winRollupTol {
			t.Errorf("%s pos %d: variance = %v, oracle %v (rel diff %g)", label, gi, st.Variance, oracle.Variance(), d)
		}
		wantQ, err := shard.QuantileOf(oracle, 0.99, maxent.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotQ := g.Aggregations[1].Quantiles[0].Value
		if d := winRelErr(gotQ, wantQ); d > winQuantileTol {
			t.Errorf("%s pos %d: p99 = %v, oracle %v (rel diff %g)", label, gi, gotQ, wantQ, d)
		}
	}
}

// windowedQuery builds the standard stats+p99 sliding-window request.
func windowedQuery(sel query.Selection) query.Request {
	return query.Request{Queries: []query.Subquery{{
		Select: sel,
		Aggregations: []query.Aggregation{
			{Op: query.OpStats},
			{Op: query.OpQuantiles, Phis: []float64{0.99}},
		},
	}}}
}

// TestWindowedQueryOracleSuite is the §7.2.2 equivalence suite: random pane
// streams ingested over HTTP, windowed /v1/query results pinned to a full
// re-merge oracle — and pinned again after a snapshot/restore round trip
// through /snapshot and /restore.
func TestWindowedQueryOracleSuite(t *testing.T) {
	const (
		paneWidth = time.Second
		retention = 48
		perPane   = 30
		width     = 8
		step      = 1
	)
	keys := []string{"us.web", "us.api", "eu.web"}
	store, srv := newWindowedServer(t, paneWidth, retention)
	rng := rand.New(rand.NewPCG(101, 103))
	// No spike: subtracting panes whose values dwarf the rest cancels
	// catastrophically in the high-order power sums, which is inherent to
	// the turnstile and covered by the exact hot-set tests instead; this
	// suite pins the drift-free contract on continuous random streams.
	ingestRandomPanes(t, srv.URL, rng, keys, paneWidth, retention, perPane, "", 0, 0)

	run := func(t *testing.T, st *shard.Store, url string) {
		for _, sel := range []query.Selection{
			{Key: "us.web", Window: &query.WindowSpec{Last: width, Step: step}},
			{Prefix: strPtr("us."), Window: &query.WindowSpec{Last: width, Step: step}},
		} {
			var ps *shard.PaneSeries
			var err error
			label := "key " + sel.Key
			if sel.Key != "" {
				ps, err = st.Panes(sel.Key)
			} else {
				ps, err = st.PanesPrefix(t.Context(), *sel.Prefix)
				label = "prefix " + *sel.Prefix
			}
			if err != nil {
				t.Fatal(err)
			}
			var out query.Response
			resp := postObj(t, url+"/v1/query", windowedQuery(sel), &out)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: /v1/query returned %s", label, resp.Status)
			}
			res := out.Results[0]
			if res.Error != nil {
				t.Fatalf("%s: %v", label, res.Error)
			}
			checkWindowedGroups(t, label, res.Groups, serverRawPanes(t, ps), width, step)
		}
	}
	run(t, store, srv.URL)

	// Snapshot over HTTP, restore into a fresh windowed server, re-pin.
	snap, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := func() ([]byte, error) {
		defer snap.Body.Close()
		var buf bytes.Buffer
		_, err := buf.ReadFrom(snap.Body)
		return buf.Bytes(), err
	}()
	if err != nil {
		t.Fatal(err)
	}
	store2, srv2 := newWindowedServer(t, paneWidth, retention)
	resp, err := http.Post(srv2.URL+"/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore returned %s", resp.Status)
	}
	run(t, store2, srv2.URL)

	// The retained fast path (whole-ring window) after restore: the
	// rolling sketch was rebuilt by exact re-merge, so it must also sit on
	// the oracle.
	var out query.Response
	postObj(t, srv2.URL+"/v1/query", windowedQuery(query.Selection{
		Prefix: strPtr(""), Window: &query.WindowSpec{},
	}), &out)
	if out.Results[0].Error != nil {
		t.Fatal(out.Results[0].Error)
	}
	ps, err := store2.PanesPrefix(t.Context(), "")
	if err != nil {
		t.Fatal(err)
	}
	checkWindowedGroups(t, "retained whole-ring", out.Results[0].Groups, serverRawPanes(t, ps), retention, retention)
}

// TestWindowsScanMatchesSummaryOracle pins the /v1/windows alert scan to
// window.ScanSummaries — the generic re-merge-every-window comparison path
// — run over moments summaries built from the same panes.
func TestWindowsScanMatchesSummaryOracle(t *testing.T) {
	const (
		paneWidth = time.Second
		retention = 40
		width     = 6
		thresh    = 700.0
		phi       = 0.95
	)
	keys := []string{"us.web", "us.api"}
	store, srv := newWindowedServer(t, paneWidth, retention)
	rng := rand.New(rand.NewPCG(7, 9))
	ingestRandomPanes(t, srv.URL, rng, keys, paneWidth, retention, 40, "us.web", 25, 30)

	var out windowsResponse
	resp := postObj(t, srv.URL+"/v1/windows", map[string]any{
		"key": "us.web", "width": width, "t": thresh, "phi": phi,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/windows returned %s", resp.Status)
	}
	if out.Windows != retention-width+1 || out.Panes != retention || out.Keys != 1 {
		t.Fatalf("scan shape %+v", out)
	}
	if out.Cascade.Queries == 0 {
		t.Error("cascade counters missing")
	}

	// Oracle: re-merge every window position from the same pane sketches.
	ps, err := store.Panes("us.web")
	if err != nil {
		t.Fatal(err)
	}
	// The pane series already carries serving MSketch clones; hand them to
	// the summary-generic scanner directly.
	sumPanes := make([]sketch.Summary, len(ps.Panes))
	for i, p := range ps.Panes {
		sumPanes[i] = p
	}
	oracle, err := window.ScanSummaries(sumPanes, width, thresh, phi,
		func() sketch.Summary { return sketch.NewMSketch(store.Order()) })
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Hot) == 0 {
		t.Fatal("vacuous: oracle flags no windows")
	}
	var got []int
	for _, h := range out.Hot {
		got = append(got, h.Index)
		wantStart := float64(ps.PaneStart(h.Index).UnixNano()) / 1e9
		if h.StartUnix != wantStart || h.EndUnix != wantStart+float64(width)*paneWidth.Seconds() {
			t.Errorf("hot window %d bounds [%v,%v), want start %v", h.Index, h.StartUnix, h.EndUnix, wantStart)
		}
	}
	if len(got) != len(oracle.Hot) {
		t.Fatalf("hot windows %v, oracle %v", got, oracle.Hot)
	}
	for i := range got {
		if got[i] != oracle.Hot[i] {
			t.Fatalf("hot windows %v, oracle %v", got, oracle.Hot)
		}
	}
}

func TestWindowsEndpointErrors(t *testing.T) {
	// Timeless store: the endpoint is disabled outright.
	plain := shard.New(shard.WithShards(2))
	srvPlain := httptest.NewServer(New(plain))
	defer srvPlain.Close()
	resp := postObj(t, srvPlain.URL+"/v1/windows", map[string]any{"key": "k", "width": 2, "t": 1.0}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("timeless store: %s, want 400", resp.Status)
	}

	_, srv := newWindowedServer(t, time.Second, 8)
	cases := []struct {
		name string
		body map[string]any
		code int
	}{
		{"both key and prefix", map[string]any{"key": "k", "prefix": "p", "width": 2, "t": 1.0}, http.StatusBadRequest},
		{"neither key nor prefix", map[string]any{"width": 2, "t": 1.0}, http.StatusBadRequest},
		{"zero width", map[string]any{"key": "k", "width": 0, "t": 1.0}, http.StatusBadRequest},
		{"width beyond retention", map[string]any{"key": "k", "width": 9, "t": 1.0}, http.StatusBadRequest},
		{"missing t", map[string]any{"key": "k", "width": 2}, http.StatusBadRequest},
		{"bad phi", map[string]any{"key": "k", "width": 2, "t": 1.0, "phi": 1.5}, http.StatusBadRequest},
		{"unknown field", map[string]any{"key": "k", "width": 2, "t": 1.0, "bogus": true}, http.StatusBadRequest},
		{"missing key", map[string]any{"key": "nope", "width": 2, "t": 1.0}, http.StatusNotFound},
		{"missing prefix", map[string]any{"prefix": "nope.", "width": 2, "t": 1.0}, http.StatusNotFound},
	}
	for _, tc := range cases {
		var envelope struct {
			Error *query.Error `json:"error"`
		}
		resp := postObj(t, srv.URL+"/v1/windows", tc.body, &envelope)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %s, want %d", tc.name, resp.Status, tc.code)
		}
		if envelope.Error == nil {
			t.Errorf("%s: no error envelope", tc.name)
		}
	}
}

func TestIngestRejectsBadTimestamp(t *testing.T) {
	_, srv := newWindowedServer(t, time.Second, 4)
	for _, body := range []string{
		`{"observations":[{"key":"k","value":1,"ts":-5}]}`,
		`{"observations":[{"key":"k","value":1,"ts":1753689600000}]}`, // milliseconds: reject, don't overflow
		`{"observations":[{"key":"k","value":1,"ts":null}]}`,
	} {
		resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body == `{"observations":[{"key":"k","value":1,"ts":null}]}` {
			// Explicit null is indistinguishable from absent: accepted.
			if resp.StatusCode != http.StatusOK {
				t.Errorf("null ts: %s, want 200", resp.Status)
			}
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: %s, want 400", body, resp.Status)
		}
	}
}

func strPtr(s string) *string { return &s }
