package server

import (
	"net/http"
	"testing"
)

// TestStatsReadPathSection: /v1/stats must carry the read_path section —
// wait-free on the default moments store, with the published-read counters
// moving as queries are served.
func TestStatsReadPathSection(t *testing.T) {
	ts, store := newTestServer(t)
	store.Add("rp.a", 1)
	store.Add("rp.b", 2)

	// Serve a couple of reads through the HTTP surface so the counters move.
	wantStatus(t, mustGet(t, ts.URL+"/quantile?key=rp.a&phi=0.5"), http.StatusOK)
	wantStatus(t, mustGet(t, ts.URL+"/keys"), http.StatusOK)

	m := wantStatus(t, mustGet(t, ts.URL+"/v1/stats"), http.StatusOK)
	rp, ok := m["read_path"].(map[string]any)
	if !ok {
		t.Fatalf("missing read_path section: %v", m)
	}
	if rp["wait_free"] != true {
		t.Errorf("read_path.wait_free = %v, want true on the moments backend", rp["wait_free"])
	}
	pub, ok := rp["published_reads"].(float64)
	if !ok || pub < 1 {
		t.Errorf("read_path.published_reads = %v, want >= 1", rp["published_reads"])
	}
	for _, field := range []string{"locked_reads", "publishes", "index_rebuilds"} {
		if _, ok := rp[field]; !ok {
			t.Errorf("read_path missing counter %q", field)
		}
	}
	if pubs, ok := rp["publishes"].(float64); !ok || pubs < 2 {
		t.Errorf("read_path.publishes = %v, want >= 2 after two adds", rp["publishes"])
	}
}
