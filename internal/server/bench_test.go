package server

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/shard"
)

// benchHandler returns a ready server handler over a pre-seeded store
// (64 groups × 2 keys of lognormal latencies).
func benchHandler(b *testing.B) *Server {
	b.Helper()
	store := shard.New(shard.WithShards(16))
	rng := rand.New(rand.NewPCG(3, 4))
	batch := store.NewBatch()
	for g := 0; g < 64; g++ {
		for k := 0; k < 2; k++ {
			key := fmt.Sprintf("g%d.k%d", g, k)
			for i := 0; i < 500; i++ {
				batch.Add(key, math.Exp(rng.NormFloat64()*0.5))
			}
		}
	}
	batch.Flush()
	return New(store)
}

// BenchmarkIngestNDJSON measures ingest throughput through the full HTTP
// handler path (decode, validate, batch, flush) for 1000-observation
// NDJSON bodies. The observations/s metric is the BENCH_baseline ingest
// number.
func BenchmarkIngestNDJSON(b *testing.B) {
	srv := New(shard.New(shard.WithShards(16)))
	rng := rand.New(rand.NewPCG(5, 6))
	var sb strings.Builder
	const obsPerReq = 1000
	for i := 0; i < obsPerReq; i++ {
		fmt.Fprintf(&sb, "{\"key\":\"g%d.k%d\",\"value\":%g}\n",
			i%16, i%64, math.Exp(rng.NormFloat64()))
	}
	body := sb.String()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/ingest", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(float64(obsPerReq)*float64(b.N)/b.Elapsed().Seconds(), "obs/s")
}

// benchV1Body builds a /v1/query batch of n group-by subqueries.
func benchV1Body(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb,
			`{"id":"q%d","select":{"prefix":"g%d.","group_by":1},"aggregations":[{"op":"quantiles","phis":[0.5,0.99]},{"op":"stats"}]}`,
			i, i%64)
	}
	sb.WriteString("]}")
	return sb.String()
}

// BenchmarkV1QueryBatch100 measures end-to-end latency of one POST
// /v1/query carrying 100 group-by subqueries — the BENCH_baseline
// batched-query number.
func BenchmarkV1QueryBatch100(b *testing.B) {
	srv := benchHandler(b)
	body := benchV1Body(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(100*float64(b.N)/b.Elapsed().Seconds(), "subqueries/s")
}

// BenchmarkLegacySequential100 is the same 100 subqueries issued the
// pre-/v1/query way: one GET /merge round trip per subquery.
func BenchmarkLegacySequential100(b *testing.B) {
	srv := benchHandler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			url := fmt.Sprintf("/merge?prefix=g%d.&groupby=1&q=0.5,0.99", j%64)
			req := httptest.NewRequest("GET", url, nil)
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body)
			}
		}
	}
	b.ReportMetric(100*float64(b.N)/b.Elapsed().Seconds(), "subqueries/s")
}
