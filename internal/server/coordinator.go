package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/query"
)

// CoordinatorServer is the HTTP face of scatter-gather serving: the same
// public endpoints as a shard node (/ingest, /v1/query, /v1/stats,
// /healthz), answered by routing to the cluster instead of a local store.
// Reads fan selections out to every relevant shard and merge the partial
// aggregates; writes forward each observation to its rendezvous owner.
type CoordinatorServer struct {
	coord   *cluster.Coordinator
	mux     *http.ServeMux
	maxBody int64
	start   time.Time
}

// CoordinatorOption customizes a CoordinatorServer.
type CoordinatorOption func(*CoordinatorServer)

// WithCoordinatorMaxBodyBytes caps the accepted request body size.
func WithCoordinatorMaxBodyBytes(n int64) CoordinatorOption {
	return func(s *CoordinatorServer) { s.maxBody = n }
}

// NewCoordinator wires the coordinator-mode HTTP server around coord.
func NewCoordinator(coord *cluster.Coordinator, opts ...CoordinatorOption) *CoordinatorServer {
	s := &CoordinatorServer{
		coord:   coord,
		mux:     http.NewServeMux(),
		maxBody: DefaultMaxBodyBytes,
		start:   time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/query", s.handleQueryV1)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *CoordinatorServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleQueryV1 runs the batched typed query across the cluster: identical
// request and response shapes to a shard node's /v1/query, with the
// additional partial_result envelope when shards were unreachable.
func (s *CoordinatorServer) handleQueryV1(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req query.Request
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "decoding request: %v", err)
		return
	}
	resp, qerr := s.coord.Execute(r.Context(), &req)
	if qerr != nil {
		writeQueryError(w, qerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngest decodes the standard ingest body — enveloped or bare-array
// JSON, or NDJSON by Content-Type, exactly like a shard node's /ingest —
// and forwards each observation to its owning shard. Delivery is
// all-or-nothing per owning node; nodes whose batch could not be delivered
// are reported in a partial_result envelope alongside the count the others
// ingested.
func (s *CoordinatorServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	obs, err := decodeWireObservations(body, r.Header.Get("Content-Type"))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "decoding request: %v", err)
		return
	}
	routed := make([]cluster.Observation, len(obs))
	for i, o := range obs {
		routed[i] = cluster.Observation{Key: o.Key, Value: o.Value, TS: o.TS}
	}

	ingested, failed, err := s.coord.Ingest(r.Context(), routed)
	if len(failed) > 0 {
		qerr := &query.Error{
			Code:    query.CodePartialResult,
			Message: "ingest not delivered to every owning node: " + err.Error(),
			Nodes:   failed,
		}
		writeJSON(w, qerr.HTTPStatus(), map[string]any{"ingested": ingested, "error": qerr})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": ingested})
}

// handleStats serves the coordinator's counters on /stats and /v1/stats:
// mode and backend mirror a shard node's fields, and the coordinator
// section carries the scatter-gather counters (fan-outs, hedges, partial
// results, per-node request/failure totals).
func (s *CoordinatorServer) handleStats(w http.ResponseWriter, r *http.Request) {
	b := s.coord.Backend()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":           "coordinator",
		"backend":        b.Fingerprint(),
		"backend_caps":   b.Caps,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"coordinator":    s.coord.Stats(),
	})
}

func (s *CoordinatorServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "coordinator"})
}
