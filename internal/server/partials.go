package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/encoding"
	"repro/internal/query"
)

// partialsRequest is the JSON body of POST /v1/partials: the deduplicated
// selections a scatter-gather coordinator fans out to this shard.
type partialsRequest struct {
	Selections []query.Selection `json:"selections"`
}

// handlePartialsV1 is the internal shard side of scatter-gather serving:
// it resolves each selection against the local store and answers with the
// merged partial aggregates in the serving backend's codec, framed by the
// binary partials layout — per selection an O(k) vector, not raw data.
// Selection failures are isolated inside the frame (a not_found here may be
// a hit on another shard); only a malformed request fails the HTTP call.
func (s *Server) handlePartialsV1(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req partialsRequest
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
				"body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "decoding request: %v", err)
		return
	}
	if len(req.Selections) == 0 {
		writeError(w, http.StatusBadRequest, query.CodeInvalid, "request needs at least one selection")
		return
	}
	if len(req.Selections) > query.MaxSubqueries {
		writeError(w, http.StatusRequestEntityTooLarge, query.CodeTooLarge,
			"too many selections (%d > %d)", len(req.Selections), query.MaxSubqueries)
		return
	}

	sets := s.engine.ResolvePartials(r.Context(), req.Selections)
	wire := make([]encoding.PartialSet, len(sets))
	for i := range sets {
		set := &sets[i]
		if set.Err != nil {
			wire[i] = encoding.PartialSet{Code: set.Err.Code, Message: set.Err.Message}
			continue
		}
		groups := make([]encoding.PartialGroup, len(set.Groups))
		for j := range set.Groups {
			g := &set.Groups[j]
			pg := encoding.PartialGroup{Label: g.Label, Keys: uint64(g.Keys), Payload: g.Payload}
			if g.Window != nil {
				pg.HasWindow = true
				pg.WindowStart = g.Window.StartUnix
				pg.WindowEnd = g.Window.EndUnix
				pg.WindowPanes = uint64(g.Window.Panes)
			}
			groups[j] = pg
		}
		wire[i] = encoding.PartialSet{Groups: groups}
	}

	data := encoding.MarshalPartials(s.engine.Backend().Fingerprint(), wire)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}
