package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
)

// newBufferedServer is newTestServer plus access to the *Server itself, so
// buffered-ingest tests can reach the flusher and its counters.
func newBufferedServer(t *testing.T, cfg shard.FlusherConfig) (*httptest.Server, *Server, *shard.Store) {
	t.Helper()
	store := shard.New(shard.WithShards(8))
	srv := New(store, WithIngestBuffer(cfg))
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return ts, srv, store
}

func postNDJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Request-scoped mode (FlushInterval 0): every request is flushed before
// the ack, so responses carry no "buffered" marker and observations are
// visible immediately — the buffer only changes who pays for stripe locks,
// never what an acknowledged client may read.
func TestIngestBufferedRequestScoped(t *testing.T) {
	ts, srv, store := newBufferedServer(t, shard.FlusherConfig{FlushSize: 1 << 20})

	m := wantStatus(t, postNDJSON(t, ts.URL,
		"{\"key\":\"a\",\"value\":1}\n{\"key\":\"a\",\"value\":2}\n{\"key\":\"b\",\"value\":3}\n"), http.StatusOK)
	if m["ingested"].(float64) != 3 {
		t.Errorf("ingested = %v, want 3", m["ingested"])
	}
	if _, ok := m["buffered"]; ok {
		t.Errorf("request-scoped response unexpectedly marked buffered: %v", m)
	}
	if got := store.Count("a"); got != 2 {
		t.Errorf("Count(a) = %v, want 2 (ack must imply visibility)", got)
	}
	fs := srv.Flusher().Stats()
	if fs.Flushes == 0 || fs.FlushedObs != 3 {
		t.Errorf("stats = %+v, want at least one flush covering 3 observations", fs)
	}
	if fs.Pending != 0 {
		t.Errorf("pending = %d after request-scoped ingest, want 0", fs.Pending)
	}
}

// Cross-request mode (FlushInterval > 0): the ack marks the response
// "buffered", and with barriers on (Stale false) any read drains first —
// read-your-writes holds even though nothing was explicitly flushed.
func TestIngestBufferedCrossRequest(t *testing.T) {
	ts, srv, store := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 1 << 20, FlushInterval: time.Hour})

	m := wantStatus(t, postNDJSON(t, ts.URL,
		"{\"key\":\"a\",\"value\":1}\n{\"key\":\"a\",\"value\":2}\n"), http.StatusOK)
	if m["ingested"].(float64) != 2 {
		t.Errorf("ingested = %v, want 2", m["ingested"])
	}
	if m["buffered"] != true {
		t.Errorf("cross-request response not marked buffered: %v", m)
	}
	if got := store.Count("a"); got != 2 {
		t.Errorf("Count(a) = %v, want 2 (read barrier must drain)", got)
	}
	if fs := srv.Flusher().Stats(); fs.Drains == 0 {
		t.Errorf("stats = %+v, want the read to register a barrier drain", fs)
	}
}

// A rejected request must not disturb buffered data a previous request was
// already acknowledged for: the decode error discards only its own batch.
func TestIngestBufferedRejectKeepsPriorData(t *testing.T) {
	ts, _, store := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 1 << 20, FlushInterval: time.Hour})

	wantStatus(t, postNDJSON(t, ts.URL, "{\"key\":\"good\",\"value\":7}\n"), http.StatusOK)
	resp := postNDJSON(t, ts.URL, "{\"key\":\"good\",\"value\":8}\n{\"key\":\"bad\"}\n")
	wantStatus(t, resp, http.StatusBadRequest)
	if got := store.Count("good"); got != 1 {
		t.Errorf("Count(good) = %v, want exactly the acknowledged observation", got)
	}
}

// Stale mode: reads skip the drain barrier, so buffered observations are
// invisible until a flush — but the staleness is bounded and an explicit
// flush catches reads fully up. Snapshots drain regardless.
func TestIngestBufferedStaleVisibility(t *testing.T) {
	ts, srv, store := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 1 << 20, FlushInterval: time.Hour, Stale: true})

	wantStatus(t, postNDJSON(t, ts.URL, "{\"key\":\"a\",\"value\":1}\n{\"key\":\"a\",\"value\":2}\n"), http.StatusOK)
	if got := store.Count("a"); got != 0 {
		t.Errorf("stale Count(a) = %v, want 0 before any flush", got)
	}
	if fs := srv.Flusher().Stats(); fs.Pending != 2 {
		t.Errorf("pending = %d, want 2", fs.Pending)
	}
	srv.Flusher().Flush()
	if got := store.Count("a"); got != 2 {
		t.Errorf("Count(a) = %v after explicit flush, want 2", got)
	}
}

// GET /snapshot with buffered observations pending must include them: the
// snapshot barrier drains even in stale mode, so a snapshot/restore cycle
// never drops acknowledged data.
func TestIngestBufferedSnapshotDrains(t *testing.T) {
	ts, _, _ := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 1 << 20, FlushInterval: time.Hour, Stale: true})

	wantStatus(t, postNDJSON(t, ts.URL, "{\"key\":\"a\",\"value\":5}\n{\"key\":\"b\",\"value\":6}\n"), http.StatusOK)
	snap, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Body.Close()
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", snap.StatusCode)
	}

	restored := shard.New(shard.WithShards(8))
	if err := restored.Restore(snap.Body); err != nil {
		t.Fatalf("restoring snapshot: %v", err)
	}
	if got := restored.TotalCount(); got != 2 {
		t.Errorf("restored TotalCount = %v, want 2 (snapshot must drain buffers)", got)
	}
}

// The /v1/stats ingest_buffer section must report the flusher's counters,
// and plain servers must report enabled=false.
func TestStatsIngestBufferSection(t *testing.T) {
	plain, _ := newTestServer(t)
	m := wantStatus(t, mustGet(t, plain.URL+"/v1/stats"), http.StatusOK)
	ib, ok := m["ingest_buffer"].(map[string]any)
	if !ok || ib["enabled"] != false {
		t.Errorf("plain server ingest_buffer = %v, want enabled=false", m["ingest_buffer"])
	}

	ts, _, _ := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 512, FlushInterval: time.Hour, Stale: true})
	wantStatus(t, postNDJSON(t, ts.URL, "{\"key\":\"a\",\"value\":1}\n"), http.StatusOK)
	m = wantStatus(t, mustGet(t, ts.URL+"/v1/stats"), http.StatusOK)
	ib, ok = m["ingest_buffer"].(map[string]any)
	if !ok {
		t.Fatalf("missing ingest_buffer section: %v", m)
	}
	for field, want := range map[string]any{
		"enabled":                true,
		"stale":                  true,
		"flush_each_request":     false,
		"flush_size":             512.0,
		"flush_interval_seconds": 3600.0,
		"pending":                1.0,
	} {
		if got := ib[field]; got != want {
			t.Errorf("ingest_buffer[%q] = %v, want %v", field, got, want)
		}
	}
	for _, field := range []string{"handles", "flushes", "flushed_obs", "drains"} {
		if _, ok := ib[field]; !ok {
			t.Errorf("ingest_buffer missing counter %q", field)
		}
	}
}

// Concurrent buffered ingest through the full HTTP stack: many clients,
// both content types, interleaved queries — then a final flush must land
// the store on exactly the observations acknowledged. This is the
// HTTP-level analogue of the shard package's oracle suite.
func TestIngestBufferedConcurrentHTTP(t *testing.T) {
	ts, srv, store := newBufferedServer(t,
		shard.FlusherConfig{FlushSize: 64, FlushInterval: time.Hour})

	const clients, requests, perRequest = 8, 20, 10
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			var err error
			defer func() { errc <- err }()
			for r := 0; r < requests; r++ {
				var sb strings.Builder
				for i := 0; i < perRequest; i++ {
					fmt.Fprintf(&sb, "{\"key\":\"load.%d\",\"value\":1}\n", c%4)
				}
				var resp *http.Response
				resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("client %d: ingest status %d", c, resp.StatusCode)
					return
				}
				if r%5 == 0 {
					resp, err = http.Get(ts.URL + "/quantile?key=load.0&q=0.5")
					if err != nil {
						return
					}
					resp.Body.Close()
				}
			}
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	srv.Flusher().Flush()
	if got, want := store.TotalCount(), float64(clients*requests*perRequest); got != want {
		t.Errorf("TotalCount = %v, want %v (no acknowledged observation may be lost or duplicated)", got, want)
	}
}
