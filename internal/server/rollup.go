package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cube"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/moments"
)

// handleMerge answers cube-style rollups: merge every key under a prefix,
// optionally grouped by one key segment. The matching per-key sketches are
// materialized into an ephemeral internal/cube data cube whose dimensions
// are the key's separator-delimited segments, then rolled up with
// Query/GroupByCoords.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	phis, err := parsePhis(q["q"])
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if !q.Has("groupby") {
		// Plain rollup: merge clone-free under the stripe locks; the cube
		// is only needed when the result must be partitioned.
		merged, merges, err := s.store.MergePrefix(prefix)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "rollup: %v", err)
			return
		}
		if merges == 0 {
			writeError(w, http.StatusNotFound, "no keys with prefix %q", prefix)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"prefix":    prefix,
			"keys":      merges,
			"merges":    merges,
			"count":     merged.Count,
			"min":       merged.Min,
			"max":       merged.Max,
			"quantiles": s.quantilePoints(merged, phis),
		})
		return
	}

	// Parse groupby before cloning sketches and materializing the cube, so
	// malformed requests fail in microseconds rather than after the work.
	level, err := strconv.Atoi(q.Get("groupby"))
	if err != nil || level < 0 {
		writeError(w, http.StatusBadRequest, "groupby must be a non-negative key-segment index")
		return
	}

	matches := s.store.Match(prefix)
	if len(matches) == 0 {
		writeError(w, http.StatusNotFound, "no keys with prefix %q", prefix)
		return
	}

	c, labels, err := s.buildCube(matches)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building rollup cube: %v", err)
		return
	}

	if level >= len(labels) {
		writeError(w, http.StatusBadRequest,
			"groupby must be a key-segment index in [0,%d)", len(labels))
		return
	}
	groups, err := c.GroupByCoords([]int{level})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rollup: %v", err)
		return
	}
	type groupResult struct {
		Group     string          `json:"group"`
		Keys      float64         `json:"keys"`
		Count     float64         `json:"count"`
		Quantiles []quantilePoint `json:"quantiles"`
	}
	results := make([]groupResult, 0, len(groups))
	for _, g := range groups {
		merged := g.Summary.(*sketch.MSketch).S.Raw()
		results = append(results, groupResult{
			Group:     labels[level][g.Coords[0]],
			Keys:      g.Merges,
			Count:     merged.Count,
			Quantiles: s.quantilePoints(merged, phis),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"prefix":  prefix,
		"groupby": level,
		"keys":    len(matches),
		"groups":  results,
	})
}

// buildCube materializes the matched sketches into a data cube whose
// dimensions are the key segments (split on the server's separator; short
// keys pad with ""). It returns the cube and, per dimension, the segment
// label for each coordinate id.
func (s *Server) buildCube(matches []shard.Keyed) (*cube.Cube, [][]string, error) {
	depth := 1
	split := make([][]string, len(matches))
	for i, m := range matches {
		split[i] = strings.Split(m.Key, s.sep)
		if len(split[i]) > depth {
			depth = len(split[i])
		}
	}

	ids := make([]map[string]int, depth)
	labels := make([][]string, depth)
	for l := range ids {
		ids[l] = make(map[string]int)
	}
	coordsOf := func(segs []string) []int {
		coords := make([]int, depth)
		for l := 0; l < depth; l++ {
			seg := ""
			if l < len(segs) {
				seg = segs[l]
			}
			id, ok := ids[l][seg]
			if !ok {
				id = len(labels[l])
				ids[l][seg] = id
				labels[l] = append(labels[l], seg)
			}
			coords[l] = id
		}
		return coords
	}
	allCoords := make([][]int, len(matches))
	for i := range matches {
		allCoords[i] = coordsOf(split[i])
	}

	schema := cube.Schema{Dims: make([]string, depth), Card: make([]int, depth)}
	for l := 0; l < depth; l++ {
		schema.Dims[l] = fmt.Sprintf("seg%d", l)
		schema.Card[l] = len(labels[l])
	}
	k := s.store.Order()
	c, err := cube.New(schema, func() sketch.Summary { return sketch.NewMSketch(k) })
	if err != nil {
		return nil, nil, err
	}
	for i, m := range matches {
		summary := &sketch.MSketch{S: moments.FromRaw(m.Sketch)}
		sum := 0.0
		if !m.Sketch.IsEmpty() {
			sum = m.Sketch.Pow[0]
		}
		if err := c.IngestSummary(allCoords[i], summary, sum, m.Sketch.Count); err != nil {
			return nil, nil, err
		}
	}
	return c, labels, nil
}
