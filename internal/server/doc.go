// Package server exposes a shard.Store of per-key moments sketches over
// HTTP — the serving path that turns the paper's merge-cheap summaries into
// an interactive aggregation service. The endpoints mirror the paper's
// query workloads:
//
//	POST /ingest     batch observation ingest (JSON body or NDJSON stream)
//	GET  /quantile   per-key quantile estimates (maximum entropy, §4)
//	GET  /merge      cube-style rollup across keys by prefix, with optional
//	                 group-by on a key segment (§7.1, via internal/cube)
//	GET  /threshold  "is the φ-quantile above t?" through the cascade (§5.2)
//	GET  /keys       key listing by prefix
//	GET  /snapshot   binary snapshot stream of the whole store
//	POST /restore    replace store contents from a snapshot stream
//	GET  /stats      store totals plus cascade stage-resolution counters
//	GET  /healthz    liveness probe
//
// Ingest hot path: request bodies are decoded into pooled shard.Batch
// buffers, so steady-state ingest takes each stripe lock once per request
// and allocates only what encoding/json itself needs. Queries clone the
// fixed-size sketch under the stripe lock and run estimation outside it,
// so slow maximum-entropy solves never block writers.
//
// Rollups treat keys as dot-separated dimension paths ("region.service.
// endpoint"): /merge?prefix=us. merges every key under us., and
// &groupby=1 splits the rollup by the second path segment. Internally the
// matching sketches are materialized into an ephemeral internal/cube data
// cube and rolled up with its Query/GroupByCoords — the same aggregation
// engine the offline experiments benchmark.
package server
