// Package server exposes a shard.Store of per-key quantile summaries over
// HTTP — the serving path that turns the paper's merge-cheap summaries into
// an interactive aggregation service. The store's serving backend (moments
// by default; Merge12, t-digest or sampling via shard.WithBackend) is
// echoed on /stats and /v1/stats and on every /v1/query result group;
// aggregations a backend cannot answer return the typed
// backend_unsupported error, and /v1/windows — built on the moment-bound
// cascade — requires the moments backend.
//
//	POST /ingest     batch observation ingest (JSON body or NDJSON stream;
//	                 observations may carry a "ts" unix-seconds stamp that
//	                 selects the time pane on windowed stores)
//	POST /v1/query   batched typed queries: any number of subqueries (key,
//	                 prefix rollup, or group-by selection × quantiles, cdf,
//	                 threshold, rank_bounds, histogram, stats aggregations),
//	                 executed by the parallel internal/query engine with
//	                 per-subquery error isolation; selections may carry a
//	                 window spec on windowed stores (§7.2.2)
//	POST /v1/windows sliding-window alert scan over one key's (or prefix
//	                 rollup's) retained pane ring, slid by turnstile pane
//	                 subtraction via internal/window.ScanMoments
//	GET  /keys       key listing by prefix
//	GET  /snapshot   binary snapshot stream of the whole store
//	POST /restore    replace store contents from a snapshot stream
//	GET  /stats      store totals plus cascade stage-resolution counters
//	GET  /healthz    liveness probe
//
// Deprecated single-shot endpoints, kept as thin adapters that translate
// into one-subquery /v1/query batches (an equivalence test suite pins each
// to its translation byte-for-byte):
//
//	GET  /quantile   per-key quantile estimates (maximum entropy, §4)
//	GET  /merge      cube-style rollup across keys by prefix, with optional
//	                 group-by on a key segment (§7.1, via internal/cube)
//	GET  /threshold  "is the φ-quantile above t?" through the cascade (§5.2)
//
// Ingest hot path: request bodies are decoded into pooled shard.Batch
// buffers, so steady-state ingest takes each stripe lock once per request
// and allocates only what encoding/json itself needs. With
// WithIngestBuffer (momentsd -ingest-buffer) the validated batch is
// absorbed into a pooled thread-local shard.Local handle instead —
// per-key accumulation outside the stripe locks, flushed before the ack
// by default or across requests on a flush interval, in which case the
// response carries "buffered": true and the ingest_buffer counters on
// /v1/stats track pending/flushed observations. Queries clone the
// fixed-size sketch under the stripe lock and run estimation outside it,
// so slow maximum-entropy solves never block writers; see internal/query
// for the planner/executor (selection dedup, bounded worker pool, memoized
// solves, context deadlines).
//
// Every error response — request-level, subquery-level and
// aggregation-level — carries the structured {code, message} envelope of
// internal/query, mapped onto HTTP statuses (invalid_request 400,
// not_found 404, not_converged 422, too_large 413, deadline_exceeded 504).
package server
