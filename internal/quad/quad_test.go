package quad

import (
	"math"
	"testing"
)

func TestRombergExp(t *testing.T) {
	got, err := Romberg(math.Exp, -1, 1, 1e-12, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := math.E - 1/math.E
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("Romberg exp = %v, want %v", got, want)
	}
}

func TestRombergPolynomialExact(t *testing.T) {
	f := func(x float64) float64 { return 3*x*x - 2*x + 1 }
	got, err := Romberg(f, 0, 2, 1e-12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-10 { // x³-x²+x from 0 to 2 = 8-4+2
		t.Errorf("Romberg poly = %v, want 6", got)
	}
}

func TestRombergEmptyInterval(t *testing.T) {
	got, err := Romberg(math.Sin, 1, 1, 1e-10, 10)
	if err != nil || got != 0 {
		t.Errorf("empty interval = %v, %v", got, err)
	}
}

func TestRombergReversedInterval(t *testing.T) {
	fwd, _ := Romberg(math.Exp, 0, 1, 1e-12, 20)
	rev, _ := Romberg(math.Exp, 1, 0, 1e-12, 20)
	if math.Abs(fwd+rev) > 1e-10 {
		t.Errorf("reversed interval should negate: %v vs %v", fwd, rev)
	}
}

func TestSimpson(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x * x }, 0, 1, 100)
	if math.Abs(got-1.0/3.0) > 1e-10 {
		t.Errorf("Simpson x² = %v, want 1/3", got)
	}
	// Odd n is rounded up; cubic exactness of Simpson.
	got = Simpson(func(x float64) float64 { return x * x * x }, -1, 2, 3)
	if math.Abs(got-15.0/4.0) > 1e-10 {
		t.Errorf("Simpson x³ = %v, want 15/4", got)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	// A peaked integrand that fixed grids handle poorly.
	f := func(x float64) float64 { return 1 / (1e-4 + x*x) }
	got := AdaptiveSimpson(f, -1, 1, 1e-10)
	want := 2 / 1e-2 * math.Atan(1/1e-2)
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("AdaptiveSimpson peak = %v, want %v", got, want)
	}
}

func TestRombergGaussian(t *testing.T) {
	// ∫_{-8}^{8} exp(-x²/2)/√(2π) ≈ 1.
	f := func(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
	got, err := Romberg(f, -8, 8, 1e-12, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Gaussian mass = %v, want 1", got)
	}
}
