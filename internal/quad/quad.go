// Package quad provides one-dimensional numerical quadrature routines.
//
// The production maximum-entropy solver integrates on a Clenshaw–Curtis grid
// (package cheby); this package exists for the lesion-study "naive Newton"
// estimator — which per the paper uses adaptive Romberg integration for every
// Hessian entry — and as a general-purpose utility.
package quad

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when an adaptive rule fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("quad: integration did not converge")

// Romberg integrates f over [a,b] by Richardson-extrapolated trapezoid
// rules, refining until successive extrapolations differ by less than tol
// (relative to the magnitude of the estimate) or maxIter doublings occur.
func Romberg(f func(float64) float64, a, b float64, tol float64, maxIter int) (float64, error) {
	if maxIter <= 0 {
		maxIter = 20
	}
	if a == b {
		return 0, nil
	}
	r := make([][]float64, 0, maxIter)
	h := b - a
	r = append(r, []float64{h / 2 * (f(a) + f(b))})
	for i := 1; i < maxIter; i++ {
		h /= 2
		// Trapezoid refinement: add midpoints of the previous level.
		n := 1 << (i - 1)
		s := 0.0
		for k := 0; k < n; k++ {
			s += f(a + (2*float64(k)+1)*h)
		}
		row := make([]float64, i+1)
		row[0] = r[i-1][0]/2 + h*s
		// Richardson extrapolation.
		pow4 := 1.0
		for j := 1; j <= i; j++ {
			pow4 *= 4
			row[j] = row[j-1] + (row[j-1]-r[i-1][j-1])/(pow4-1)
		}
		r = append(r, row)
		if i >= 3 {
			cur, prev := row[i], r[i-1][i-1]
			if math.Abs(cur-prev) <= tol*(1+math.Abs(cur)) {
				return cur, nil
			}
		}
	}
	last := r[len(r)-1]
	return last[len(last)-1], ErrNoConvergence
}

// Simpson integrates f over [a,b] with the composite Simpson rule on n
// panels (n rounded up to even).
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// AdaptiveSimpson integrates f over [a,b], recursively bisecting panels
// until the local Simpson error estimate is below tol.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fm, whole, tol, 30)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
