package macrobase

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/cascade"
	"repro/internal/sketch"
)

// buildWorkload creates groups where a known subset has an inflated tail —
// exactly the anomalous-dimension-value scenario of §7.2.1. Returns the
// engine plus the set of group names that truly exceed the threshold.
func buildWorkload(t *testing.T, factory func() sketch.Summary, nGroups, cellsPerGroup, cellSize int) (*Engine, map[string]bool) {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	eng := &Engine{Factory: factory}
	var allData []float64
	groupData := make([][]float64, nGroups)
	for g := 0; g < nGroups; g++ {
		// One anomalous group: with a 30× rate multiplier, a group can only
		// qualify when its outliers dominate the global tail, which caps
		// how many qualifying groups can coexist (rate ≈ nGroups/nHot %).
		hot := g == 0
		var cells []sketch.Summary
		for c := 0; c < cellsPerGroup; c++ {
			cell := factory()
			for i := 0; i < cellSize; i++ {
				v := rng.ExpFloat64()
				if hot {
					// The anomalous group draws ~45% of its values from a
					// shifted distribution.
					if rng.Float64() < 0.45 {
						v = 6 + rng.ExpFloat64()*2
					}
				}
				cell.Add(v)
				allData = append(allData, v)
				groupData[g] = append(groupData[g], v)
			}
			cells = append(cells, cell)
		}
		gd := groupData[g]
		name := groupName(g)
		eng.Groups = append(eng.Groups, Group{
			Name:  name,
			Cells: cells,
			CountAboveFn: func(thresh float64) float64 {
				n := 0.0
				for _, v := range gd {
					if v > thresh {
						n++
					}
				}
				return n
			},
		})
	}
	// Ground truth: groups whose true 0.7-quantile exceeds the true global
	// 0.99-quantile.
	sort.Float64s(allData)
	t99 := allData[len(allData)*99/100]
	truth := map[string]bool{}
	for g := range groupData {
		gd := append([]float64{}, groupData[g]...)
		sort.Float64s(gd)
		if gd[len(gd)*70/100] > t99 {
			truth[groupName(g)] = true
		}
	}
	return eng, truth
}

func groupName(g int) string { return string(rune('A'+g%26)) + string(rune('0'+g/26)) }

func msFactory() sketch.Summary { return sketch.NewMSketch(10) }

func TestSubgroupPhi(t *testing.T) {
	o := Options{GlobalPhi: 0.99, RateMultiplier: 30}
	if got := o.SubgroupPhi(); got < 0.699 || got > 0.701 {
		t.Errorf("SubgroupPhi = %v, want 0.70", got)
	}
}

func TestCascadeFindsAnomalousGroups(t *testing.T) {
	eng, truth := buildWorkload(t, msFactory, 60, 5, 200)
	rep, err := eng.Run(ModeCascade, Options{Cascade: cascade.Full()})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range rep.Matches {
		got[m] = true
	}
	// Every true anomaly must be found; false positives only at the margin.
	missed, extra := 0, 0
	for name := range truth {
		if !got[name] {
			missed++
		}
	}
	for name := range got {
		if !truth[name] {
			extra++
		}
	}
	if missed > 0 {
		t.Errorf("missed %d of %d anomalous groups", missed, len(truth))
	}
	if extra > 2 {
		t.Errorf("%d false positives (have %d true)", extra, len(truth))
	}
	if len(truth) == 0 {
		t.Fatal("workload produced no true anomalies; test is vacuous")
	}
	if rep.Stats.Queries != 60 {
		t.Errorf("cascade stats queries = %d", rep.Stats.Queries)
	}
	// The cascade should resolve most groups before the maxent stage.
	if reached := rep.Stats.Reached(cascade.StageMaxEnt); reached > 30 {
		t.Errorf("maxent reached by %d/60 groups; cascade ineffective", reached)
	}
}

func TestModesAgree(t *testing.T) {
	eng, _ := buildWorkload(t, msFactory, 40, 4, 150)
	repCascade, err := eng.Run(ModeCascade, Options{Cascade: cascade.Full()})
	if err != nil {
		t.Fatal(err)
	}
	repDirect, err := eng.Run(ModeDirect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cascade is defined to agree with direct maxent evaluation.
	if len(repCascade.Matches) != len(repDirect.Matches) {
		t.Errorf("cascade found %d, direct found %d", len(repCascade.Matches), len(repDirect.Matches))
	}
	repCount, err := eng.Run(ModeCount, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Count mode is exact per-group; allow marginal disagreements.
	diff := symmetricDiff(repCascade.Matches, repCount.Matches)
	if diff > 2 {
		t.Errorf("cascade vs count disagree on %d groups", diff)
	}
}

func TestMerge12Mode(t *testing.T) {
	eng, truth := buildWorkload(t, func() sketch.Summary { return sketch.NewMerge12(32) }, 40, 4, 150)
	rep, err := eng.Run(ModeDirect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range rep.Matches {
		got[m] = true
	}
	missed := 0
	for name := range truth {
		if !got[name] {
			missed++
		}
	}
	if missed > 1 {
		t.Errorf("Merge12 direct mode missed %d of %d", missed, len(truth))
	}
}

func TestCascadeModeRejectsWrongSummary(t *testing.T) {
	eng, _ := buildWorkload(t, func() sketch.Summary { return sketch.NewGK(0.02) }, 5, 2, 50)
	if _, err := eng.Run(ModeCascade, Options{Cascade: cascade.Full()}); err == nil {
		t.Error("cascade mode must reject non-moments summaries")
	}
}

func TestCountModeRequiresFn(t *testing.T) {
	eng := &Engine{Factory: msFactory}
	cell := msFactory()
	cell.Add(1)
	eng.Groups = []Group{{Name: "g", Cells: []sketch.Summary{cell}}}
	if _, err := eng.Run(ModeCount, Options{}); err == nil {
		t.Error("count mode without CountAboveFn must error")
	}
}

func TestInvalidRateMultiplier(t *testing.T) {
	eng, _ := buildWorkload(t, msFactory, 4, 2, 50)
	if _, err := eng.Run(ModeDirect, Options{GlobalPhi: 0.99, RateMultiplier: 200}); err == nil {
		t.Error("subgroup phi <= 0 must error")
	}
}

func symmetricDiff(a, b []string) int {
	am := map[string]bool{}
	for _, x := range a {
		am[x] = true
	}
	bm := map[string]bool{}
	for _, x := range b {
		bm[x] = true
	}
	d := 0
	for x := range am {
		if !bm[x] {
			d++
		}
	}
	for x := range bm {
		if !am[x] {
			d++
		}
	}
	return d
}
