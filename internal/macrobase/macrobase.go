// Package macrobase implements the paper's MacroBase integration (§7.2.1):
// given pre-aggregated per-cell summaries, find every dimension-value
// subgroup whose outlier rate exceeds a multiple of the global rate. With a
// global outlier threshold at the q-th percentile and a rate multiplier r,
// a subgroup qualifies exactly when its (1 − r·(1−q))-quantile exceeds the
// global q-quantile — a threshold query the moments-sketch cascade resolves
// without solving for most subgroups (Figs. 12–13).
package macrobase

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/maxent"
	"repro/internal/sketch"
)

// Group is one subpopulation: the cells whose summaries merge into it.
type Group struct {
	Name  string
	Cells []sketch.Summary
	// CountAboveFn optionally reports the exact number of member values
	// above a threshold — the "Merge12b" optimistic counting baseline,
	// available only when the engine was built with raw-data access.
	CountAboveFn func(t float64) float64
}

// Options configures the outlier search.
type Options struct {
	// GlobalPhi is the global percentile defining an outlier (paper: 0.99).
	GlobalPhi float64
	// RateMultiplier is how many times the global outlier rate a group
	// needs to be reported (paper: 30× → subgroup quantile 0.70).
	RateMultiplier float64
	// Cascade picks which cascade stages run (moments-sketch mode only).
	Cascade cascade.Config
	// Solver configures maximum-entropy estimation.
	Solver maxent.Options
}

func (o *Options) defaults() {
	if o.GlobalPhi == 0 {
		o.GlobalPhi = 0.99
	}
	if o.RateMultiplier == 0 {
		o.RateMultiplier = 30
	}
}

// SubgroupPhi returns the quantile a subgroup is thresholded on.
func (o Options) SubgroupPhi() float64 {
	o.defaults()
	return 1 - o.RateMultiplier*(1-o.GlobalPhi)
}

// Report is the outcome of a search with its timing breakdown (Fig. 12).
type Report struct {
	Threshold float64 // the global quantile t
	Matches   []string
	MergeTime time.Duration
	EstTime   time.Duration
	Stats     cascade.Stats
	NumGroups int
	NumMerges int
}

// Mode selects the evaluation strategy.
type Mode int

const (
	// ModeCascade uses moments sketches with the threshold cascade.
	ModeCascade Mode = iota
	// ModeDirect estimates each subgroup quantile directly from its merged
	// summary (the "Baseline" of Fig. 12 when used with moments sketches,
	// or "Merge12a" with Merge12 summaries).
	ModeDirect
	// ModeCount uses per-group exact counts above the threshold — the
	// optimistic "Merge12b" baseline; groups must provide CountAboveFn.
	ModeCount
)

// Engine runs MacroBase-style outlier-rate searches over groups.
type Engine struct {
	Factory func() sketch.Summary
	Groups  []Group
}

// Run executes the search: merge all cells for the global threshold, then
// resolve each group through the selected mode.
func (e *Engine) Run(mode Mode, opts Options) (*Report, error) {
	opts.defaults()
	rep := &Report{NumGroups: len(e.Groups)}
	subPhi := opts.SubgroupPhi()
	if subPhi <= 0 || subPhi >= 1 {
		return nil, fmt.Errorf("macrobase: rate multiplier %v yields invalid subgroup quantile %v",
			opts.RateMultiplier, subPhi)
	}

	// Phase 1: global threshold from merging every cell.
	start := time.Now()
	global := e.Factory()
	merged := make([]sketch.Summary, 0, len(e.Groups))
	for _, g := range e.Groups {
		agg := e.Factory()
		for _, cell := range g.Cells {
			if err := agg.Merge(cell); err != nil {
				return nil, err
			}
			rep.NumMerges++
		}
		if err := global.Merge(agg); err != nil {
			return nil, err
		}
		rep.NumMerges++
		merged = append(merged, agg)
	}
	rep.MergeTime = time.Since(start)

	start = time.Now()
	t := global.Quantile(opts.GlobalPhi)
	rep.Threshold = t

	// Phase 2: per-group threshold checks.
	for i, g := range e.Groups {
		var above bool
		switch mode {
		case ModeCascade:
			ms, ok := merged[i].(*sketch.MSketch)
			if !ok {
				return nil, fmt.Errorf("macrobase: cascade mode requires moments sketches, got %s", merged[i].Name())
			}
			cfg := opts.Cascade
			cfg.Solver = opts.Solver
			// Solver failures still yield a bound-based fallback decision;
			// an empty group simply never matches.
			res, err := cascade.Threshold(ms.S.Raw(), t, subPhi, cfg, &rep.Stats)
			if err != nil && errors.Is(err, core.ErrEmpty) {
				res = false
			}
			above = res
		case ModeDirect:
			above = merged[i].Quantile(subPhi) > t
		case ModeCount:
			if g.CountAboveFn == nil {
				return nil, fmt.Errorf("macrobase: group %q lacks CountAboveFn for count mode", g.Name)
			}
			n := merged[i].Count()
			above = g.CountAboveFn(t) > (1-subPhi)*n
		}
		if above {
			rep.Matches = append(rep.Matches, g.Name)
		}
	}
	rep.EstTime = time.Since(start)
	return rep, nil
}
