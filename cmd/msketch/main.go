// Command msketch builds, merges and queries moments sketches from the
// command line. Values are read one per line (plain text floats); sketches
// are stored in the library's binary format.
//
// Usage:
//
//	msketch build -k 10 -o day1.msk  < day1.txt
//	msketch build -k 10 -o day2.msk  < day2.txt
//	msketch merge -o week.msk day1.msk day2.msk
//	msketch query -q 0.5,0.99 week.msk
//	msketch info  week.msk
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/moments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "msketch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: msketch <build|merge|query|info> [flags]

  build -k K -o OUT [-bits N]   build a sketch from stdin values (one per line)
  merge -o OUT FILE...          merge sketch files
  query -q PHI[,PHI...] FILE    estimate quantiles
  info FILE                     print sketch statistics`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	k := fs.Int("k", moments.DefaultK, "sketch order")
	out := fs.String("o", "", "output file (required)")
	bits := fs.Int("bits", 0, "mantissa bits for low-precision output (0 = full)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}
	s := moments.New(moments.WithK(*k))
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("build: line %d: %v", line, err)
		}
		s.Add(v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var data []byte
	var err error
	if *bits > 0 {
		data, err = s.MarshalLowPrecision(*bits)
	} else {
		data, err = s.MarshalBinary()
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("built sketch: %v values, %d bytes -> %s\n", s.Count(), len(data), *out)
	return nil
}

func load(path string) (*moments.Sketch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s moments.Sketch
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	files := fs.Args()
	if *out == "" || len(files) == 0 {
		return fmt.Errorf("merge: need -o and at least one input file")
	}
	root, err := load(files[0])
	if err != nil {
		return err
	}
	for _, f := range files[1:] {
		s, err := load(f)
		if err != nil {
			return err
		}
		if err := root.Merge(s); err != nil {
			return fmt.Errorf("merging %s: %v", f, err)
		}
	}
	data, err := root.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d sketches: %v values -> %s\n", len(files), root.Count(), *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	qs := fs.String("q", "0.5", "comma-separated quantile fractions")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: need exactly one sketch file")
	}
	s, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, part := range strings.Split(*qs, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("query: bad quantile %q", part)
		}
		q, err := s.Quantile(phi)
		if err != nil {
			return fmt.Errorf("estimating p%g: %v", phi*100, err)
		}
		lo, hi := s.RankBounds(q)
		fmt.Printf("p%-6g %-14g (rank bounds [%.4f, %.4f])\n", phi*100, q, lo, hi)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: need exactly one sketch file")
	}
	s, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("order k:   %d\n", s.K())
	fmt.Printf("count:     %v\n", s.Count())
	fmt.Printf("min/max:   %g / %g\n", s.Min(), s.Max())
	fmt.Printf("mean:      %g\n", s.Mean())
	fmt.Printf("stddev:    %g\n", s.StdDev())
	fmt.Printf("size:      %d bytes\n", s.SizeBytes())
	return nil
}
