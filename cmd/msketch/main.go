// Command msketch builds, merges and queries moments sketches from the
// command line. Values are read one per line (plain text floats); sketches
// are stored in the library's binary format.
//
// Usage:
//
//	msketch build -k 10 -o day1.msk  < day1.txt
//	msketch build -k 10 -o day2.msk  < day2.txt
//	msketch merge -o week.msk day1.msk day2.msk
//	msketch query -q 0.5,0.99 week.msk
//	msketch info  week.msk
//
// query doubles as a client for a running momentsd: with -server it
// translates the flags into a POST /v1/query batch (or, with -batch,
// forwards a raw request body from stdin) and pretty-prints the results.
// Against a windowed server (momentsd -pane-width), -last restricts the
// selection to the trailing N time panes and -step additionally slides a
// width-N window across the retained ring, one result row per position.
//
//	msketch query -server http://localhost:7607 -key us.web -q 0.5,0.99
//	msketch query -server http://localhost:7607 -prefix us. -groupby 1 -q 0.99
//	msketch query -server http://localhost:7607 -key us.web -last 60 -q 0.99
//	msketch query -server http://localhost:7607 -key us.web -last 60 -step 10 -q 0.99
//	msketch query -server http://localhost:7607 -batch < request.json
//
// windows runs the sliding-window alert scan (POST /v1/windows): which
// width-pane windows breached "φ-quantile > t", slid by turnstile pane
// subtraction on the server:
//
//	msketch windows -server http://localhost:7607 -prefix us. -width 60 -t 100 -phi 0.99
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/query"
	"repro/moments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "windows":
		err = cmdWindows(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "msketch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: msketch <build|merge|query|windows|info> [flags]

  build -k K -o OUT [-bits N]   build a sketch from stdin values (one per line)
  merge -o OUT FILE...          merge sketch files
  query -q PHI[,PHI...] FILE    estimate quantiles from a sketch file
  query -server URL [-key K | -prefix P [-groupby N]] [-q PHI,...] [-t T -phi PHI]
        [-last N [-step N]]     query a running momentsd via POST /v1/query;
                                -last/-step select time windows on a windowed server
  query -server URL -batch      forward a raw /v1/query body from stdin
  windows -server URL [-key K | -prefix P] -width N -t T [-phi PHI]
                                sliding-window alert scan via POST /v1/windows
  info FILE                     print sketch statistics`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	k := fs.Int("k", moments.DefaultK, "sketch order")
	out := fs.String("o", "", "output file (required)")
	bits := fs.Int("bits", 0, "mantissa bits for low-precision output (0 = full)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}
	if *k < 1 || *k > moments.MaxK {
		return fmt.Errorf("build: -k %d outside [1,%d]", *k, moments.MaxK)
	}
	if *bits < 0 || *bits > 52 {
		return fmt.Errorf("build: -bits %d outside [0,52]", *bits)
	}
	s := moments.New(moments.WithK(*k))
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("build: line %d: %w", line, err)
		}
		s.Add(v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var data []byte
	var err error
	if *bits > 0 {
		data, err = s.MarshalLowPrecision(*bits)
	} else {
		data, err = s.MarshalBinary()
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("built sketch: %v values, %d bytes -> %s\n", s.Count(), len(data), *out)
	return nil
}

func load(path string) (*moments.Sketch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s moments.Sketch
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	files := fs.Args()
	if *out == "" || len(files) == 0 {
		return fmt.Errorf("merge: need -o and at least one input file")
	}
	root, err := load(files[0])
	if err != nil {
		return err
	}
	for _, f := range files[1:] {
		s, err := load(f)
		if err != nil {
			return err
		}
		if err := root.Merge(s); err != nil {
			return fmt.Errorf("merging %s: %w", f, err)
		}
	}
	data, err := root.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d sketches: %v values -> %s\n", len(files), root.Count(), *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	qs := fs.String("q", "0.5", "comma-separated quantile fractions")
	server := fs.String("server", "", "momentsd base URL; queries POST /v1/query instead of a sketch file")
	key := fs.String("key", "", "server mode: exact key to query")
	prefix := fs.String("prefix", "", "server mode: key prefix to roll up")
	groupby := fs.Int("groupby", -1, "server mode: group a prefix rollup by this key-segment index")
	tFlag := fs.String("t", "", "server mode: also ask whether the -phi quantile exceeds this threshold")
	phiFlag := fs.Float64("phi", query.DefaultThresholdPhi, "server mode: quantile fraction for -t")
	last := fs.Int("last", 0, "server mode: select only the trailing N time panes (windowed servers)")
	step := fs.Int("step", 0, "server mode: slide a width -last window by this many panes per position")
	batch := fs.Bool("batch", false, "server mode: forward a raw /v1/query JSON body from stdin")
	timeout := fs.Duration("timeout", 30*time.Second, "server mode: request timeout")
	fs.Parse(args)

	if *server != "" {
		return serverQuery(fs, *server, *qs, *key, *prefix, *groupby, *tFlag, *phiFlag, *last, *step, *batch, *timeout)
	}
	if *last > 0 || *step > 0 {
		return fmt.Errorf("query: -last/-step need -server (time panes live in momentsd, not sketch files)")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: need exactly one sketch file (or -server URL)")
	}
	s, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	phis, err := parsePhiList(*qs)
	if err != nil {
		return err
	}
	for _, phi := range phis {
		q, err := s.Quantile(phi)
		if err != nil {
			return fmt.Errorf("estimating p%g: %w", phi*100, err)
		}
		lo, hi := s.RankBounds(q)
		fmt.Printf("p%-6g %-14g (rank bounds [%.4f, %.4f])\n", phi*100, q, lo, hi)
	}
	return nil
}

func parsePhiList(qs string) ([]float64, error) {
	var phis []float64
	for _, part := range strings.Split(qs, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad quantile %q", part)
		}
		phis = append(phis, phi)
	}
	return phis, nil
}

// serverQuery drives a running momentsd through POST /v1/query.
func serverQuery(fs *flag.FlagSet, server, qs, key, prefix string, groupby int, tFlag string, phi float64, last, step int, batch bool, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	url := strings.TrimSuffix(server, "/") + "/v1/query"

	if batch {
		body, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("query: reading stdin: %w", err)
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		// Raw passthrough: emit the server's response verbatim.
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query: server returned %s", resp.Status)
		}
		return nil
	}

	if (key == "") == (prefix == "" && !flagSet(fs, "prefix")) {
		return fmt.Errorf("query: server mode needs exactly one of -key and -prefix")
	}
	sq := query.Subquery{}
	if key != "" {
		sq.Select = query.Selection{Key: key}
	} else {
		p := prefix
		sq.Select = query.Selection{Prefix: &p}
		if groupby >= 0 {
			g := groupby
			sq.Select.GroupBy = &g
		}
	}
	if last > 0 || step > 0 {
		if groupby >= 0 {
			return fmt.Errorf("query: -last/-step cannot combine with -groupby")
		}
		sq.Select.Window = &query.WindowSpec{Last: last, Step: step}
	}
	phis, err := parsePhiList(qs)
	if err != nil {
		return err
	}
	sq.Aggregations = []query.Aggregation{
		{Op: query.OpStats},
		{Op: query.OpQuantiles, Phis: phis},
	}
	if tFlag != "" {
		t, err := strconv.ParseFloat(tFlag, 64)
		if err != nil {
			return fmt.Errorf("query: bad threshold %q", tFlag)
		}
		sq.Aggregations = append(sq.Aggregations,
			query.Aggregation{Op: query.OpThreshold, T: &t, Phi: &phi})
	}

	post := func(sq query.Subquery) (*query.Result, error) {
		payload, err := json.Marshal(query.Request{Queries: []query.Subquery{sq}})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var envelope struct {
				Error *query.Error `json:"error"`
			}
			if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error != nil {
				return nil, fmt.Errorf("query: %s", envelope.Error.Error())
			}
			return nil, fmt.Errorf("query: server returned %s", resp.Status)
		}
		var out query.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("query: decoding response: %w", err)
		}
		if len(out.Results) == 0 {
			return nil, fmt.Errorf("query: server returned no results — is %s a momentsd /v1/query endpoint?", url)
		}
		return &out.Results[0], nil
	}
	res, err := post(sq)
	if err != nil {
		return err
	}
	if res.Error != nil && res.Error.Code == query.CodeBackendUnsupported {
		// The stats aggregation is implicit (the user asked for quantiles);
		// on a non-moments server drop it and retry with the op set every
		// backend answers.
		sq.Aggregations = sq.Aggregations[1:]
		if res, err = post(sq); err != nil {
			return err
		}
	}
	if res.Error != nil {
		return fmt.Errorf("query: %s", res.Error.Error())
	}
	// Header: name the serving backend so saved outputs are
	// self-describing (older servers omit the field; print nothing then).
	if len(res.Groups) > 0 && res.Groups[0].Backend != "" {
		fmt.Printf("serving backend: %s\n", res.Groups[0].Backend)
	}
	for _, g := range res.Groups {
		scope := key
		if key == "" {
			scope = prefix + "*"
			if g.Group != "" && g.Window == nil {
				scope = fmt.Sprintf("%s* [%s]", prefix, g.Group)
			}
		}
		if g.Window != nil {
			scope = fmt.Sprintf("%s  %s … %s (%d panes)", scope,
				fmtUnix(g.Window.StartUnix), fmtUnix(g.Window.EndUnix), g.Window.Panes)
		}
		fmt.Printf("%s  (%d keys, %.0f observations)\n", scope, g.Keys, g.Count)
		for _, agg := range g.Aggregations {
			if agg.Error != nil {
				fmt.Printf("  %s: error: %s\n", agg.Op, agg.Error.Error())
				continue
			}
			switch agg.Op {
			case query.OpStats:
				st := agg.Stats
				fmt.Printf("  min/mean/max  %g / %g / %g  (stddev %g)\n", st.Min, st.Mean, st.Max, st.StdDev)
			case query.OpQuantiles:
				for _, qp := range agg.Quantiles {
					suffix := ""
					if agg.Degraded {
						suffix = "  (degraded: moment bounds)"
					}
					fmt.Printf("  p%-6g %g%s\n", qp.Q*100, qp.Value, suffix)
				}
			case query.OpThreshold:
				th := agg.Threshold
				fmt.Printf("  p%g > %g: %v  (resolved by %s)\n", th.Phi*100, th.T, th.Above, th.Stage)
			}
		}
	}
	return nil
}

// fmtUnix renders fractional unix seconds as local wall-clock time.
func fmtUnix(ts float64) string {
	return time.Unix(0, int64(ts*float64(time.Second))).Format("15:04:05")
}

// cmdWindows drives the sliding-window alert scan (POST /v1/windows) of a
// windowed momentsd: report every width-pane window whose φ-quantile
// exceeds t.
func cmdWindows(args []string) error {
	fs := flag.NewFlagSet("windows", flag.ExitOnError)
	server := fs.String("server", "", "momentsd base URL (required)")
	key := fs.String("key", "", "exact key to scan")
	prefix := fs.String("prefix", "", "key prefix to roll up pane-wise and scan")
	width := fs.Int("width", 0, "window width in panes (required)")
	tFlag := fs.Float64("t", 0, "threshold the -phi quantile is tested against (required)")
	phi := fs.Float64("phi", query.DefaultThresholdPhi, "quantile fraction")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("windows: -server is required")
	}
	if *width < 1 {
		return fmt.Errorf("windows: -width must be at least 1 pane")
	}
	if !flagSet(fs, "t") {
		return fmt.Errorf("windows: -t is required")
	}
	if (*key == "") == (*prefix == "" && !flagSet(fs, "prefix")) {
		return fmt.Errorf("windows: need exactly one of -key and -prefix")
	}

	req := map[string]any{"width": *width, "t": *tFlag, "phi": *phi}
	if *key != "" {
		req["key"] = *key
	} else {
		req["prefix"] = *prefix
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(strings.TrimSuffix(*server, "/")+"/v1/windows", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error *query.Error `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error != nil {
			return fmt.Errorf("windows: %s", envelope.Error.Error())
		}
		return fmt.Errorf("windows: server returned %s", resp.Status)
	}
	var out struct {
		PaneWidthSeconds float64 `json:"pane_width_seconds"`
		Panes            int     `json:"panes"`
		Windows          int     `json:"windows"`
		Keys             int     `json:"keys"`
		Hot              []struct {
			Index     int     `json:"index"`
			StartUnix float64 `json:"start_unix"`
			EndUnix   float64 `json:"end_unix"`
		} `json:"hot"`
		MergeNS int64 `json:"merge_ns"`
		EstNS   int64 `json:"est_ns"`
		Cascade struct {
			Queries  int            `json:"queries"`
			Resolved map[string]int `json:"resolved"`
		} `json:"cascade"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("windows: decoding response: %w", err)
	}
	fmt.Printf("scanned %d windows of %d×%s panes over %d keys (merge %s, estimate %s)\n",
		out.Windows, *width, time.Duration(out.PaneWidthSeconds*float64(time.Second)), out.Keys,
		time.Duration(out.MergeNS).Round(time.Microsecond), time.Duration(out.EstNS).Round(time.Microsecond))
	fmt.Printf("cascade: %d queries, resolved Simple=%d Markov=%d RTT=%d MaxEnt=%d\n",
		out.Cascade.Queries, out.Cascade.Resolved["Simple"], out.Cascade.Resolved["Markov"],
		out.Cascade.Resolved["RTT"], out.Cascade.Resolved["MaxEnt"])
	if len(out.Hot) == 0 {
		fmt.Printf("no windows with p%g > %g\n", *phi*100, *tFlag)
		return nil
	}
	fmt.Printf("p%g > %g in %d windows:\n", *phi*100, *tFlag, len(out.Hot))
	for _, h := range out.Hot {
		fmt.Printf("  ALERT window %3d  %s … %s\n", h.Index, fmtUnix(h.StartUnix), fmtUnix(h.EndUnix))
	}
	return nil
}

// flagSet reports whether the named flag was explicitly provided.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: need exactly one sketch file")
	}
	s, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("order k:   %d\n", s.K())
	fmt.Printf("count:     %v\n", s.Count())
	fmt.Printf("min/max:   %g / %g\n", s.Min(), s.Max())
	fmt.Printf("mean:      %g\n", s.Mean())
	fmt.Printf("stddev:    %g\n", s.StdDev())
	fmt.Printf("size:      %d bytes\n", s.SizeBytes())
	return nil
}
