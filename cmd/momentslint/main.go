// Command momentslint runs the repository's invariant analyzers (package
// internal/analyzers) in two modes:
//
//	momentslint [packages]
//
// loads and checks the given package patterns (default ./...) in-process,
// printing file:line:col diagnostics and exiting 1 when any survive their
// //lint:allow directives.
//
//	go vet -vettool=$(which momentslint) ./...
//
// speaks the go vet unit-checker protocol: the go command supplies
// per-package .cfg files with export data and fact-file plumbing, and
// caches clean results keyed on the binary's build ID.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/framework"
)

func main() {
	suite := analyzers.All()

	for _, a := range os.Args[1:] {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			framework.Main(suite...) // never returns
		}
	}

	patterns := os.Args[1:]
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "momentslint: unknown flag %s\nusage: momentslint [packages]\n", p)
			os.Exit(2)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "momentslint:", err)
		os.Exit(2)
	}
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momentslint:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		if p.Standard || p.DepOnly {
			continue
		}
		for _, e := range p.Errors {
			fmt.Fprintf(os.Stderr, "momentslint: %s: %v\n", p.PkgPath, e)
		}
	}
	diags, err := framework.RunPackages(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "momentslint:", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		return
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	os.Exit(1)
}
