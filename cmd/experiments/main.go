// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments list                 # show available experiment IDs
//	experiments fig7 [fig10 ...]     # run selected experiments
//	experiments all                  # run everything
//
// Flags:
//
//	-scale F   multiply workload sizes (default 1.0; raise toward
//	           paper-scale fidelity, lower for faster runs)
//	-quick     smoke-test sizes (seconds instead of minutes)
//	-seed N    generator seed (default 17)
//	-out DIR   also write each experiment's output to DIR/<id>.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	quick := flag.Bool("quick", false, "smoke-test sizes")
	seed := flag.Uint64("seed", 17, "generator seed")
	outDir := flag.String("out", "", "directory for per-experiment output files")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := harness.Config{Scale: *scale, Quick: *quick, Seed: *seed}

	if args[0] == "list" {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []harness.Experiment
	if args[0] == "all" {
		exps = harness.All()
	} else {
		for _, id := range args {
			e, err := harness.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, e := range exps {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		start := time.Now()
		if err := e.Run(cfg, w); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
		}
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if f != nil {
			f.Close()
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [flags] <list|all|id...>

Regenerates the evaluation tables and figures of "Moment-Based Quantile
Sketches for Efficient High Cardinality Aggregation Queries" (VLDB 2018).
Run 'experiments list' to see available IDs.`)
	flag.PrintDefaults()
}
