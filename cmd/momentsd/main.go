// Command momentsd is a long-running HTTP aggregation server backed by a
// sharded store of per-key moments sketches. It ingests (key, value)
// observations and answers quantile, rollup and threshold queries over any
// key or key prefix — the paper's high-cardinality aggregation workload as
// a service.
//
// Usage:
//
//	momentsd [-addr :7607] [-backend moments] [-k 10] [-shards N] [-sep .]
//	         [-workers N] [-solve-cache N] [-pane-width DUR] [-panes N]
//	         [-ingest-buffer] [-ingest-flush-size N] [-ingest-flush-interval DUR]
//	         [-ingest-stale] [-snapshot FILE] [-snapshot-interval DUR]
//	         [-wal-dir DIR] [-wal-sync-interval DUR] [-wal-segment-size N]
//	         [-wal-on-error fail|drop] [-pprof-addr ADDR]
//	momentsd -coordinator -nodes host1:7607,host2:7607[,...]
//	         [-addr :7607] [-backend moments] [-k 10] [-node-timeout DUR]
//	         [-hedge-after DUR] [-hedge-quantile Q] [-pprof-addr ADDR]
//
// -coordinator switches momentsd into scatter-gather mode: instead of a
// local store it serves /ingest and /v1/query by routing keys to the
// -nodes shard list via rendezvous hashing, fanning selections out
// concurrently over the internal POST /v1/partials endpoint, and merging
// the nodes' partial aggregates — O(k) backend-codec vectors — before
// solving at the coordinator. Fan-out is deadline-aware (each node gets
// the smaller of -node-timeout and ~90% of the request's remaining
// deadline; answers missing nodes carry the typed partial_result envelope
// naming them) and hedges slow shards with one duplicate-suppressed retry
// after -hedge-after (0 = adaptively after the -hedge-quantile of recent
// node latencies). -backend/-k must match the shard nodes' configuration;
// scatter-gather counters appear under "coordinator" on /v1/stats. See
// ARCHITECTURE.md "Scatter-gather serving".
//
// -backend selects the serving summary backend: the default "moments"
// sketch, or one of the paper's §6.1 baselines — "merge12", "tdigest",
// "sampling" — optionally parameterized as name:param (e.g. tdigest:200).
// Non-moments backends answer quantile and threshold aggregations from
// their own estimators; aggregations needing moment structure (cdf,
// rank_bounds, histogram, stats) and the /v1/windows cascade scan return
// the typed backend_unsupported error. Snapshots are tagged with the
// backend and refuse to restore across backends.
//
// -ingest-buffer turns on thread-local buffered ingest for multi-core
// saturation: each /ingest request accumulates into per-goroutine local
// summaries (an O(k) vector add per observation for the moments backend)
// outside the store's stripe locks, merged in on flush. By default every
// request is flushed before it is acknowledged, so an ack still implies
// visibility. With -ingest-flush-interval > 0, observations may instead
// stay buffered across requests for up to -ingest-flush-size observations
// or the interval, whichever comes first; query paths drain pending
// buffers before reading (read-your-writes), unless -ingest-stale opts
// into bounded-staleness reads. Snapshots always drain first — staleness
// bounds visibility, never durability. Flush and pending counters appear
// under "ingest_buffer" on /stats and /v1/stats. Backends without exact
// merges fall back to batched striped writes.
//
// -solve-cache bounds the engine's cross-request solve cache (resolved
// selections with their solved max-ent densities, invalidated by mutation
// version; capacity in cached rollups, default 1024, 0 disables) —
// hit/miss/eviction counters appear on /stats and /v1/stats. -pprof-addr serves net/http/pprof on a
// separate listener for live profiling (off by default; see
// ARCHITECTURE.md "Profiling a live daemon").
//
// With -pane-width, the store gains a time dimension: every key keeps a
// ring of -panes fixed-width time panes alongside its all-time sketch,
// enabling window selections on /v1/query and the POST /v1/windows alert
// scan (sliding-window threshold queries per §7.2.2 of the paper, slid by
// turnstile pane subtraction instead of re-merging):
//
//	momentsd -pane-width 1m -panes 240   # 4h of 1-minute panes
//	curl -XPOST localhost:7607/v1/query -d '{"queries":[
//	  {"id":"p99-last-hour","select":{"key":"us.web","window":{"last":60}},
//	   "aggregations":[{"op":"quantiles","phis":[0.99]}]}]}'
//	curl -XPOST localhost:7607/v1/windows \
//	  -d '{"prefix":"us.","width":60,"t":100,"phi":0.99}'
//
// With -snapshot, the store is restored from FILE at startup (when the file
// exists) and saved back on shutdown; -snapshot-interval additionally saves
// periodically. Snapshots are written to a temp file and renamed, so a
// crash mid-save never corrupts the previous snapshot. Windowed stores
// write the versioned pane-carrying snapshot format; the pane
// configuration must match when restoring.
//
// -wal-dir adds crash durability between snapshots: every ingest batch is
// appended to a per-stripe write-ahead log and group-commit fsynced before
// the request is acknowledged, so a SIGKILL or power loss never loses an
// acknowledged observation. At startup the log is replayed on top of the
// restored snapshot (tolerating a torn tail from the crash itself), and
// each successful snapshot doubles as a checkpoint that truncates the
// covered segments. -wal-sync-interval bounds how long a commit can wait
// for the fsync ticker (the syncer also fsyncs eagerly whenever writers
// block), -wal-segment-size bounds segment files before rotation, and
// -wal-on-error picks the degraded mode after a log write failure: "fail"
// turns every ingest into a typed 503 until restart, "drop" keeps
// acknowledging without durability and counts what it dropped. Log health
// appears under "wal" on /v1/stats. Requires -snapshot. See
// ARCHITECTURE.md "Durability & crash recovery".
//
// The primary query surface is the batched typed endpoint POST /v1/query
// (see internal/query): one request carries any number of subqueries —
// exact keys, prefix rollups, group-bys — each with its own aggregation
// list, executed by a parallel planner/executor (-workers bounds its
// concurrency):
//
//	curl -XPOST localhost:7607/ingest -d '{"observations":[{"key":"us.web","value":12.5}]}'
//	curl -XPOST localhost:7607/v1/query -d '{"queries":[
//	  {"id":"per-service","select":{"prefix":"us.","group_by":1},
//	   "aggregations":[{"op":"quantiles","phis":[0.5,0.99]},{"op":"stats"}]},
//	  {"id":"slo","select":{"prefix":"us."},
//	   "aggregations":[{"op":"threshold","t":100,"phi":0.99}]}]}'
//	curl 'localhost:7607/stats'
//
// The single-shot GET endpoints (/quantile, /merge, /threshold) are
// deprecated adapters over the same engine, kept for compatibility:
//
//	curl 'localhost:7607/quantile?key=us.web&q=0.5,0.99'
//	curl 'localhost:7607/merge?prefix=us.&q=0.99&groupby=1'
//	curl 'localhost:7607/threshold?prefix=us.&t=100&phi=0.99'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sketch"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":7607", "listen address")
		backendSpec  = flag.String("backend", "moments", "serving summary backend: moments, merge12, tdigest or sampling, optionally with a size parameter as name:param (e.g. tdigest:200)")
		order        = flag.Int("k", 10, "moments sketch order (moments backend only)")
		shards       = flag.Int("shards", 0, "lock stripes (0 = 8×GOMAXPROCS, rounded to a power of two)")
		sep          = flag.String("sep", ".", "key segment separator for group-by selections")
		workers      = flag.Int("workers", 0, "query executor worker pool size (0 = GOMAXPROCS)")
		solveCache   = flag.Int("solve-cache", query.DefaultSolveCacheSize, "cross-request solve cache capacity in cached rollups (group-by selections charge one per group; 0 disables)")
		paneWidth    = flag.Duration("pane-width", 0, "time pane width; > 0 enables windowed queries (/v1/query window selections, /v1/windows)")
		panes        = flag.Int("panes", 240, "time panes retained per key when -pane-width is set")
		ingestBuffer = flag.Bool("ingest-buffer", false, "thread-local buffered ingest: accumulate observations outside the stripe locks, merging per-key summaries in on flush")
		ingestSize   = flag.Int("ingest-flush-size", shard.DefaultFlushSize, "buffered observations per ingest handle that trigger an automatic flush (with -ingest-buffer)")
		ingestEvery  = flag.Duration("ingest-flush-interval", 0, "flush ingest buffers this often, letting observations buffer across requests; 0 = flush before acknowledging each request (with -ingest-buffer)")
		ingestStale  = flag.Bool("ingest-stale", false, "bounded-staleness reads: queries skip draining pending ingest buffers (requires -ingest-buffer and -ingest-flush-interval > 0; snapshots still drain)")
		lockedReads  = flag.Bool("locked-reads", false, "serve reads under the stripe locks instead of from published wait-free snapshots (escape hatch; also the baseline for read-contention measurements)")
		snapshotPath = flag.String("snapshot", "", "snapshot file: restored at startup, saved on shutdown")
		snapInterval = flag.Duration("snapshot-interval", 0, "additionally save the snapshot this often (0 = only on shutdown)")
		walDir       = flag.String("wal-dir", "", "write-ahead log directory: every acknowledged observation is fsynced here before the ack and replayed after a crash (requires -snapshot)")
		walSync      = flag.Duration("wal-sync-interval", wal.DefaultSyncInterval, "backstop period of the log's group-commit fsync ticker; the syncer fsyncs eagerly whenever writers wait (with -wal-dir)")
		walSegSize   = flag.Int64("wal-segment-size", wal.DefaultSegmentSize, "bytes per log segment before rotating to a new one (with -wal-dir)")
		walOnError   = flag.String("wal-on-error", "fail", "degraded mode after a log write/fsync failure: fail = 503 every ingest, drop = acknowledge without durability (with -wal-dir)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

		coordinator   = flag.Bool("coordinator", false, "scatter-gather mode: route to the -nodes shard list instead of serving a local store")
		nodesSpec     = flag.String("nodes", "", "comma-separated shard node base URLs (coordinator mode; bare host:port gets the http scheme)")
		nodeTimeout   = flag.Duration("node-timeout", 2*time.Second, "per-node budget for one fan-out attempt (coordinator mode)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "fixed delay before hedging a slow shard with a duplicate request (0 = adaptive from -hedge-quantile; coordinator mode)")
		hedgeQuantile = flag.Float64("hedge-quantile", 0.9, "latency quantile of recent node responses used as the adaptive hedge delay, in (0,1) (coordinator mode)")
	)
	flag.Parse()

	if *order < 1 || *order > core.MaxK {
		log.Fatalf("momentsd: -k %d outside [1,%d]", *order, core.MaxK)
	}
	var backend sketch.Backend
	if *backendSpec != "" && *backendSpec != "moments" {
		b, err := sketch.ParseBackend(*backendSpec)
		if err != nil {
			log.Fatalf("momentsd: -backend: %v", err)
		}
		if b.Name == "moments" {
			// "moments:K" routes through the order flag path so -k and the
			// spec cannot disagree silently.
			log.Fatalf("momentsd: use -k to parameterize the moments backend")
		}
		backend = b
	}

	if *coordinator {
		if *nodesSpec == "" {
			log.Fatalf("momentsd: -coordinator requires -nodes")
		}
		if *snapshotPath != "" || *ingestBuffer || *paneWidth != 0 || *walDir != "" || *lockedReads {
			log.Fatalf("momentsd: -snapshot, -ingest-buffer, -pane-width, -wal-dir and -locked-reads configure a local store; a coordinator has none")
		}
		if *hedgeQuantile <= 0 || *hedgeQuantile >= 1 {
			log.Fatalf("momentsd: -hedge-quantile %g outside (0,1)", *hedgeQuantile)
		}
		if backend.IsZero() {
			backend = sketch.MomentsBackend(*order)
		}
		runCoordinator(coordinatorConfig{
			addr:          *addr,
			backend:       backend,
			nodes:         strings.Split(*nodesSpec, ","),
			nodeTimeout:   *nodeTimeout,
			hedgeAfter:    *hedgeAfter,
			hedgeQuantile: *hedgeQuantile,
			pprofAddr:     *pprofAddr,
		})
		return
	}
	if *nodesSpec != "" {
		log.Fatalf("momentsd: -nodes requires -coordinator")
	}

	opts := []shard.Option{shard.WithOrder(*order), shard.WithShards(*shards)}
	if !backend.IsZero() {
		opts = append(opts, shard.WithBackend(backend))
	}
	if *lockedReads {
		opts = append(opts, shard.WithLockedReads())
	}
	if *paneWidth < 0 {
		log.Fatalf("momentsd: -pane-width must be positive")
	}
	if *paneWidth > 0 {
		if *panes < 2 || *panes > shard.MaxRetention {
			log.Fatalf("momentsd: -panes %d outside [2,%d]", *panes, shard.MaxRetention)
		}
		opts = append(opts, shard.WithWindow(*paneWidth, *panes))
	}
	if !*ingestBuffer {
		if *ingestEvery != 0 || *ingestStale {
			log.Fatalf("momentsd: -ingest-flush-interval and -ingest-stale require -ingest-buffer")
		}
	} else {
		if *ingestSize < 1 {
			log.Fatalf("momentsd: -ingest-flush-size must be at least 1")
		}
		if *ingestEvery < 0 {
			log.Fatalf("momentsd: -ingest-flush-interval must not be negative")
		}
		if *ingestStale && *ingestEvery == 0 {
			// With request-scoped flushing every ack already implies
			// visibility, so stale reads would silently do nothing.
			log.Fatalf("momentsd: -ingest-stale requires -ingest-flush-interval > 0")
		}
	}
	walPolicy := wal.PolicyFail
	if *walDir == "" {
		if *walSync != wal.DefaultSyncInterval || *walSegSize != wal.DefaultSegmentSize || *walOnError != "fail" {
			log.Fatalf("momentsd: -wal-sync-interval, -wal-segment-size and -wal-on-error require -wal-dir")
		}
	} else {
		if *snapshotPath == "" {
			// The log is truncated against snapshots; without one it would
			// grow forever and replay from the beginning of time.
			log.Fatalf("momentsd: -wal-dir requires -snapshot")
		}
		if *walSync <= 0 {
			log.Fatalf("momentsd: -wal-sync-interval must be positive")
		}
		if *walSegSize <= 0 {
			log.Fatalf("momentsd: -wal-segment-size must be positive")
		}
		var err error
		if walPolicy, err = wal.ParsePolicy(*walOnError); err != nil {
			log.Fatalf("momentsd: -wal-on-error: %v", err)
		}
	}

	store := shard.New(opts...)
	var cuts []uint64
	if *snapshotPath != "" {
		var err error
		if cuts, err = loadSnapshot(store, *snapshotPath); err != nil {
			log.Fatalf("momentsd: restoring snapshot: %v", err)
		}
	}

	// Replay the write-ahead log before serving: every record past the
	// snapshot's watermark re-applies through a batch (whole records only
	// — replay never half-applies), then the log is opened for fresh
	// segments and attached as the store's journal.
	var walLog *wal.Log
	if *walDir != "" {
		// At GOMAXPROCS=1 an fsync syscall holds the runtime's only P until
		// sysmon retakes it, so ingest compute and the group-commit fsync
		// strictly alternate instead of overlapping. A second P costs
		// nothing when idle and lets the CPU encode the next pile while the
		// device commits the last one. Respect an explicit operator choice.
		if os.Getenv("GOMAXPROCS") == "" && runtime.GOMAXPROCS(0) == 1 {
			runtime.GOMAXPROCS(2)
			log.Printf("momentsd: raised GOMAXPROCS to 2 so ingest overlaps write-ahead log fsyncs")
		}
		fp := store.Backend().Fingerprint()
		replayBatch := store.NewBatch()
		rs, err := wal.Replay(*walDir, fp, cuts, func(obs []shard.Observation) error {
			for _, o := range obs {
				replayBatch.AddAt(o.Key, o.Value, o.At)
			}
			replayBatch.Flush()
			return nil
		}, log.Printf)
		if err != nil {
			log.Fatalf("momentsd: replaying write-ahead log: %v", err)
		}
		if rs.Records > 0 || rs.TornSegments > 0 {
			log.Printf("momentsd: replayed %d observations (%d records, %d segments, %d torn) from %s",
				rs.Observations, rs.Records, rs.Segments, rs.TornSegments, *walDir)
		}
		walLog, err = wal.Open(wal.Options{
			Dir:          *walDir,
			SyncInterval: *walSync,
			SegmentSize:  *walSegSize,
			Policy:       walPolicy,
			Fingerprint:  fp,
			SeqFloor:     cuts,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("momentsd: opening write-ahead log: %v", err)
		}
		walLog.NoteReplay(rs)
		store.SetJournal(walLog)
	}

	serverOpts := []server.ServerOption{
		server.WithKeySeparator(*sep),
		server.WithQueryWorkers(*workers),
		server.WithSolveCache(*solveCache),
	}
	if *ingestBuffer {
		serverOpts = append(serverOpts, server.WithIngestBuffer(shard.FlusherConfig{
			FlushSize:     *ingestSize,
			FlushInterval: *ingestEvery,
			Stale:         *ingestStale,
		}))
	}

	// snapMu serializes snapshot saves so an in-flight periodic save cannot
	// finish after — and thereby clobber — the final shutdown snapshot.
	// With a write-ahead log attached, every save is a checkpoint: appends
	// pause while the log seals its segments and the snapshot (stamped with
	// the log's cut watermark) is written, then the covered segments are
	// deleted.
	var snapMu sync.Mutex
	save := func() error {
		snapMu.Lock()
		defer snapMu.Unlock()
		if walLog != nil {
			return walLog.Checkpoint(func(cuts []uint64) error {
				return saveSnapshot(store, *snapshotPath, cuts)
			})
		}
		return saveSnapshot(store, *snapshotPath, nil)
	}
	if walLog != nil {
		serverOpts = append(serverOpts, server.WithWAL(walLog, save))
	}

	handler := server.New(store, serverOpts...)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	startPprof(*pprofAddr)
	if *snapshotPath != "" && *snapInterval > 0 {
		go func() {
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := save(); err != nil {
						log.Printf("momentsd: periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	// Listen before announcing so the logged address is the bound one —
	// with -addr :0 (tests, the crash harness) the kernel-assigned port is
	// what callers need to see.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("momentsd: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		windowed := ""
		if w, n, ok := store.WindowConfig(); ok {
			windowed = fmt.Sprintf(", %d×%s panes", n, w)
		}
		durable := ""
		if walLog != nil {
			durable = fmt.Sprintf(", wal %s", *walDir)
		}
		log.Printf("momentsd: listening on %s (backend %s, %d shards%s%s)",
			ln.Addr(), store.Backend().Fingerprint(), store.NumShards(), windowed, durable)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Fatalf("momentsd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("momentsd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("momentsd: shutdown: %v", err)
	}
	// Drain any cross-request ingest buffers before the final snapshot so
	// acknowledged-but-buffered observations are never lost on shutdown.
	if err := handler.Close(); err != nil {
		log.Printf("momentsd: draining ingest buffers: %v", err)
	}
	if *snapshotPath != "" {
		if err := save(); err != nil {
			log.Fatalf("momentsd: final snapshot: %v", err)
		}
		log.Printf("momentsd: snapshot saved to %s", *snapshotPath)
	}
	if walLog != nil {
		if err := walLog.Close(); err != nil {
			log.Printf("momentsd: closing write-ahead log: %v", err)
		}
	}
}

// coordinatorConfig carries the coordinator-mode settings from flag
// parsing to startup.
type coordinatorConfig struct {
	addr          string
	backend       sketch.Backend
	nodes         []string
	nodeTimeout   time.Duration
	hedgeAfter    time.Duration
	hedgeQuantile float64
	pprofAddr     string
}

// runCoordinator boots the scatter-gather coordinator: no local store, no
// snapshots — just routing, fan-out, merge and solve over the shard nodes.
func runCoordinator(cfg coordinatorConfig) {
	coord, err := cluster.New(cluster.Config{
		Nodes:         cfg.nodes,
		Backend:       cfg.backend,
		NodeTimeout:   cfg.nodeTimeout,
		HedgeAfter:    cfg.hedgeAfter,
		HedgeQuantile: cfg.hedgeQuantile,
	})
	if err != nil {
		log.Fatalf("momentsd: %v", err)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           server.NewCoordinator(coord),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	startPprof(cfg.pprofAddr)

	errc := make(chan error, 1)
	go func() {
		log.Printf("momentsd: coordinating %d nodes on %s (backend %s)",
			len(coord.Nodes()), cfg.addr, cfg.backend.Fingerprint())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("momentsd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("momentsd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("momentsd: shutdown: %v", err)
	}
}

// startPprof serves net/http/pprof on its own listener (and the default
// mux), so the profiling endpoints are never reachable through the serving
// address. See ARCHITECTURE.md "Profiling a live daemon". Empty addr = off.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("momentsd: pprof listening on %s", addr)
		pp := &http.Server{Addr: addr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
		if err := pp.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("momentsd: pprof server: %v", err)
		}
	}()
}

// loadSnapshot restores the store from path; a missing file is not an
// error (first boot). It returns the WAL watermark embedded in the
// snapshot footer, if any: the per-stripe segment sequence numbers whose
// observations the snapshot already covers. A snapshot without a
// watermark (pre-WAL format, or WAL disabled when it was written)
// returns nil cuts, which makes replay conservatively re-apply every
// segment — merges are idempotent only at the segment granularity the
// watermark provides, so nil is the safe direction.
func loadSnapshot(store *shard.Store, path string) ([]uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := store.Restore(f); err != nil {
		return nil, err
	}
	cuts, err := wal.ReadWatermark(path)
	if err != nil {
		return nil, err
	}
	log.Printf("momentsd: restored %d keys (%.0f observations) from %s",
		store.Len(), store.TotalCount(), path)
	return cuts, nil
}

// saveSnapshot writes atomically: temp file in the same directory, fsync,
// rename, directory fsync. The final fsync makes the rename itself
// durable — without it a crash can roll the directory entry back to the
// old snapshot even though the new bytes hit disk. When cuts is non-nil
// the WAL watermark footer is appended after the store payload so the
// next boot knows which segments the snapshot already covers.
func saveSnapshot(store *shard.Store, path string, cuts []uint64) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".momentsd-snapshot-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if err := store.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if cuts != nil {
		if err := wal.AppendWatermark(f, cuts); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("renaming snapshot into place: %w", err)
	}
	return wal.SyncDir(dir)
}
