// Crash-fault battery: a real momentsd child process is SIGKILLed at
// randomized points while ingest is in flight, restarted against the same
// snapshot and write-ahead log, and audited against an exact in-memory
// oracle. The durability contract under test: every acknowledged
// observation survives the crash, and an unacknowledged in-flight batch
// is recovered all-or-nothing — never half-applied.
//
// The oracle is bit-exact, not approximate: every key always carries the
// same small power-of-two value, so a key's moments sketch is a pure
// function of its observation count (power sums of exact integers, log
// sums built by repeated addition of one constant — both independent of
// apply order). Comparing the full marshaled statistics therefore
// detects a single lost, duplicated or misattributed observation.
package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// momentsdBin is the momentsd binary under test, built once in TestMain.
var momentsdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "momentsd-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	momentsdBin = filepath.Join(dir, "momentsd")
	out, err := exec.Command("go", "build", "-o", momentsdBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building momentsd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// node is one running momentsd child.
type node struct {
	cmd      *exec.Cmd
	base     string // http://host:port
	logs     *lockedBuf
	killOnce sync.Once
}

type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+) `)

// startNode launches momentsd on a kernel-assigned port and waits for the
// listen announcement.
func startNode(t *testing.T, args ...string) *node {
	t.Helper()
	cmd := exec.Command(momentsdBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	logs := &lockedBuf{}
	cmd.Stdout = logs
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		// Tee stderr into the log buffer while watching for the bound
		// address; keep draining so the child never blocks on a full pipe.
		buf := make([]byte, 4096)
		var pending []byte
		announced := false
		for {
			n, err := stderr.Read(buf)
			if n > 0 {
				logs.Write(buf[:n])
				if !announced {
					pending = append(pending, buf[:n]...)
					if m := listenRE.FindSubmatch(pending); m != nil {
						addrc <- string(m[1])
						announced = true
						pending = nil
					}
				}
			}
			if err != nil {
				close(addrc)
				return
			}
		}
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			cmd.Wait()
			t.Fatalf("momentsd exited before announcing its address:\n%s", logs.String())
		}
		n := &node{cmd: cmd, base: "http://" + addr, logs: logs}
		// A failing assertion mid-round must not orphan the child past the
		// test binary's lifetime, and its logs are the evidence.
		t.Cleanup(func() {
			n.kill()
			if t.Failed() {
				t.Logf("momentsd logs (%s):\n%s", n.base, n.logs.String())
			}
		})
		return n
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("momentsd did not announce an address in 30s:\n%s", logs.String())
	}
	panic("unreachable")
}

// kill SIGKILLs the child — no shutdown path, no final snapshot. This is
// the crash under test. Idempotent: the test-cleanup kill of an
// already-crashed node is a no-op.
func (n *node) kill() {
	n.killOnce.Do(func() {
		n.cmd.Process.Signal(syscall.SIGKILL)
		n.cmd.Wait()
	})
}

// stop SIGTERMs the child and waits for the graceful shutdown — the
// checkpoint-and-truncate path a crash never takes. Shares killOnce with
// kill so the test-cleanup kill of a stopped node is a no-op.
func (n *node) stop(t *testing.T) {
	t.Helper()
	n.killOnce.Do(func() {
		n.cmd.Process.Signal(syscall.SIGTERM)
		if err := n.cmd.Wait(); err != nil {
			t.Fatalf("momentsd did not exit cleanly on SIGTERM: %v\n%s", err, n.logs.String())
		}
	})
}

// crashWorker drives sequential ingest batches over its own key space and
// tracks exactly which observations were acknowledged. At most one batch
// — the one in flight when the server dies — is ambiguous.
type crashWorker struct {
	id   int
	keys []string
	vals map[string]float64

	acked    map[string]int // per-key counts of acknowledged observations
	inflight map[string]int // the un-acknowledged batch, nil after an ack
}

func newCrashWorkers(n, keysEach int) []*crashWorker {
	// Values are small powers of two: every power sum up to k=10 is an
	// exact integer well under 2^53, and the log power sums accumulate a
	// single constant per key, so the oracle reconstruction below is
	// bit-identical no matter what order replay applies batches in.
	pows := []float64{1, 2, 4}
	ws := make([]*crashWorker, n)
	for i := range ws {
		w := &crashWorker{id: i, acked: make(map[string]int), vals: make(map[string]float64)}
		for k := 0; k < keysEach; k++ {
			key := fmt.Sprintf("w%d.key%d", i, k)
			w.keys = append(w.keys, key)
			w.vals[key] = pows[k%len(pows)]
		}
		ws[i] = w
	}
	return ws
}

// run fires ingest batches until the server dies under it. rng is owned
// by this worker (workers get independent seeds).
func (w *crashWorker) run(base string, client *http.Client, rng *rand.Rand) {
	for batches := 0; batches < 100000; batches++ {
		counts := make(map[string]int)
		var body bytes.Buffer
		n := 1 + rng.Intn(48)
		for i := 0; i < n; i++ {
			key := w.keys[rng.Intn(len(w.keys))]
			counts[key]++
			fmt.Fprintf(&body, "{\"key\":%q,\"value\":%g}\n", key, w.vals[key])
		}
		w.inflight = counts
		resp, err := client.Post(base+"/ingest", "application/x-ndjson", &body)
		if err != nil {
			return // crashed mid-request: the batch stays ambiguous
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return
		}
		for k, c := range counts {
			w.acked[k] += c
		}
		w.inflight = nil
	}
}

// audit compares the recovered store against the oracle and folds the
// ambiguous in-flight batch into the acknowledged state according to what
// the store proves happened.
func (w *crashWorker) audit(t *testing.T, recovered *shard.Store, order int) {
	t.Helper()
	// Resolve the in-flight batch all-or-nothing: whatever the recovered
	// count of its first key says, every other key of the batch must agree
	// — a half-applied batch fails here.
	delta := 0
	if len(w.inflight) > 0 {
		var k0 string
		for k := range w.inflight {
			k0 = k
			break
		}
		switch got := int(recovered.Count(k0)); got {
		case w.acked[k0]:
			delta = 0
		case w.acked[k0] + w.inflight[k0]:
			delta = 1
		default:
			t.Fatalf("worker %d key %s: recovered count %d, want %d (batch lost) or %d (batch applied)",
				w.id, k0, got, w.acked[k0], w.acked[k0]+w.inflight[k0])
		}
		if delta == 1 {
			for k, c := range w.inflight {
				w.acked[k] += c
			}
		}
		w.inflight = nil
	}
	for _, key := range w.keys {
		want := w.acked[key]
		sk, ok := recovered.Sketch(key)
		if !ok {
			if want != 0 {
				t.Fatalf("worker %d key %s: %d acknowledged observations lost entirely", w.id, key, want)
			}
			continue
		}
		expect := core.New(order)
		for i := 0; i < want; i++ {
			expect.Add(w.vals[key])
		}
		if sk.Count != expect.Count || sk.Min != expect.Min || sk.Max != expect.Max ||
			sk.LogCount != expect.LogCount {
			t.Fatalf("worker %d key %s: recovered count=%g min=%g max=%g, want count=%g min=%g max=%g",
				w.id, key, sk.Count, sk.Min, sk.Max, expect.Count, expect.Min, expect.Max)
		}
		for i := range expect.Pow {
			if sk.Pow[i] != expect.Pow[i] || sk.LogPow[i] != expect.LogPow[i] {
				t.Fatalf("worker %d key %s: power sum %d diverged: pow %g vs %g, logpow %g vs %g",
					w.id, key, i+1, sk.Pow[i], expect.Pow[i], sk.LogPow[i], expect.LogPow[i])
			}
		}
	}
}

// fetchStore downloads /snapshot from a live node and restores it into a
// fresh in-process store — the same bytes a backup or a peer would see.
func fetchStore(t *testing.T, base string, order int) *shard.Store {
	t.Helper()
	resp, err := http.Get(base + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /snapshot: %s", resp.Status)
	}
	st := shard.New(shard.WithOrder(order))
	if err := st.Restore(resp.Body); err != nil {
		t.Fatalf("restoring fetched snapshot: %v", err)
	}
	return st
}

// crashLineage runs one snapshot+WAL directory through `rounds`
// crash/recover cycles with ingest in flight at every kill.
func crashLineage(t *testing.T, rounds int, seed int64, extraArgs []string, tornTail bool) {
	const order = 10
	dir := t.TempDir()
	args := append([]string{
		"-snapshot", filepath.Join(dir, "snap"),
		"-wal-dir", filepath.Join(dir, "wal"),
		"-wal-sync-interval", "1ms",
	}, extraArgs...)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("lineage seed %d, args %v", seed, args)
	workers := newCrashWorkers(3, 6)
	client := &http.Client{Timeout: 10 * time.Second}
	for round := 0; round < rounds; round++ {
		n := startNode(t, args...)
		// Audit the state recovered from the previous round's crash before
		// adding new load; the first round audits the empty store.
		recovered := fetchStore(t, n.base, order)
		for _, w := range workers {
			w.audit(t, recovered, order)
		}
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *crashWorker, seed int64) {
				defer wg.Done()
				w.run(n.base, client, rand.New(rand.NewSource(seed)))
			}(w, rng.Int63())
		}
		// The randomized kill point: long enough for group commits, short
		// enough that requests are usually mid-flight.
		time.Sleep(time.Duration(5+rng.Intn(60)) * time.Millisecond)
		n.kill()
		wg.Wait()
		if tornTail {
			appendGarbageTails(t, filepath.Join(dir, "wal"), rng)
		}
	}
	// One final recovery pass so the last crash is audited too.
	n := startNode(t, args...)
	recovered := fetchStore(t, n.base, order)
	for _, w := range workers {
		w.audit(t, recovered, order)
	}
	n.kill()
	// The audits are only meaningful if the kills landed on real load: a
	// lineage that somehow never got an ingest acknowledged would pass
	// every check vacuously.
	total := 0
	for _, w := range workers {
		for _, c := range w.acked {
			total += c
		}
	}
	t.Logf("lineage survived %d crashes with %d acknowledged observations recovered", rounds, total)
	if total < 100*rounds {
		t.Fatalf("only %d observations acknowledged across %d rounds — the battery is not exercising ingest", total, rounds)
	}
}

// appendGarbageTails simulates a torn final write: random junk lands
// after the last fsynced record of every active segment. Replay must
// stop at the tear and still deliver every acknowledged record, which
// all precede it.
func appendGarbageTails(t *testing.T, walDir string, rng *rand.Rand) {
	t.Helper()
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		junk := make([]byte, 1+rng.Intn(64))
		rng.Read(junk)
		f, err := os.OpenFile(filepath.Join(walDir, e.Name()), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(junk)
		f.Close()
	}
}

// TestCrashRecovery is the battery: ≥20 randomized SIGKILL points across
// four server shapes. Each round kills a real momentsd with requests in
// flight and proves the restart recovered exactly the acknowledged state.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash battery forks real processes; skipped under -short")
	}
	seed := time.Now().UnixNano()
	t.Run("plain", func(t *testing.T) {
		crashLineage(t, 8, seed+1, nil, false)
	})
	t.Run("buffered-ingest", func(t *testing.T) {
		crashLineage(t, 4, seed+2, []string{"-ingest-buffer"}, false)
	})
	t.Run("checkpointing", func(t *testing.T) {
		// Mid-run checkpoints truncate sealed segments while tiny segments
		// force constant rotation — recovery must stitch snapshot + the
		// surviving WAL suffix.
		crashLineage(t, 4, seed+3, []string{
			"-snapshot-interval", "75ms",
			"-wal-segment-size", "32768",
		}, false)
	})
	t.Run("torn-tail", func(t *testing.T) {
		crashLineage(t, 4, seed+4, nil, true)
	})
}

// mustIngest posts count observations of one key/value and requires the
// acknowledgment — every observation it sends is in the durability
// contract.
func mustIngest(t *testing.T, base, key string, val float64, count int) {
	t.Helper()
	var body bytes.Buffer
	for i := 0; i < count; i++ {
		fmt.Fprintf(&body, "{\"key\":%q,\"value\":%g}\n", key, val)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}
}

// TestCleanShutdownThenCrash pins the lineage the randomized battery
// cannot reach: a graceful SIGTERM checkpoint truncates every WAL
// segment (the directory ends up empty), and the next boot must number
// fresh segments above the snapshot watermark's cuts. Without that
// floor, post-restart sequences collide with the persisted watermark and
// a later crash recovery silently skips acknowledged records as already
// snapshot-covered.
func TestCleanShutdownThenCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes; skipped under -short")
	}
	const order = 10
	const key = "clean.key"
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	args := []string{
		"-snapshot", filepath.Join(dir, "snap"),
		"-wal-dir", walDir,
		"-wal-sync-interval", "1ms",
	}
	count := func(t *testing.T, base string) int {
		t.Helper()
		return int(fetchStore(t, base, order).Count(key))
	}

	// Round 1: acknowledged load, then a crash — recovery comes from the
	// WAL alone.
	n1 := startNode(t, args...)
	mustIngest(t, n1.base, key, 2, 100)
	n1.kill()

	// Round 2: recover, then shut down cleanly. The shutdown checkpoint
	// covers every record, so truncation must leave the WAL empty.
	n2 := startNode(t, args...)
	if got := count(t, n2.base); got != 100 {
		t.Fatalf("recovered %d observations after crash, want 100", got)
	}
	n2.stop(t)
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			t.Fatalf("segment %s survived a covering shutdown checkpoint", e.Name())
		}
	}

	// Round 3: boot from snapshot + empty WAL, add more acknowledged
	// load, crash again — and tear the tails for good measure.
	n3 := startNode(t, args...)
	if got := count(t, n3.base); got != 100 {
		t.Fatalf("restored %d observations from snapshot, want 100", got)
	}
	mustIngest(t, n3.base, key, 2, 100)
	n3.kill()
	appendGarbageTails(t, walDir, rand.New(rand.NewSource(1)))

	// Round 4: both halves must be there — the snapshot's 100 and the
	// post-shutdown WAL's 100.
	n4 := startNode(t, args...)
	if got := count(t, n4.base); got != 200 {
		t.Fatalf("recovered %d observations, want 200 — post-shutdown WAL records lost", got)
	}
	n4.kill()
}

// TestWALFlagValidation execs the real binary against invalid WAL flag
// combinations: each must refuse to start with a pointed message rather
// than serve with silently-misconfigured durability.
func TestWALFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes; skipped under -short")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "snap")
	plainFile := filepath.Join(dir, "plain")
	if err := os.WriteFile(plainFile, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"wal-dir-requires-snapshot",
			[]string{"-wal-dir", filepath.Join(dir, "w1")},
			"-wal-dir requires -snapshot"},
		{"wal-opts-require-wal-dir",
			[]string{"-wal-sync-interval", "5ms"},
			"require -wal-dir"},
		{"non-positive-sync-interval",
			[]string{"-snapshot", snap, "-wal-dir", filepath.Join(dir, "w2"), "-wal-sync-interval", "0s"},
			"-wal-sync-interval must be positive"},
		{"non-positive-segment-size",
			[]string{"-snapshot", snap, "-wal-dir", filepath.Join(dir, "w3"), "-wal-segment-size", "-1"},
			"-wal-segment-size must be positive"},
		{"unknown-policy",
			[]string{"-snapshot", snap, "-wal-dir", filepath.Join(dir, "w4"), "-wal-on-error", "retry"},
			"unknown on-error policy"},
		{"coordinator-excludes-wal",
			[]string{"-coordinator", "-nodes", "127.0.0.1:1", "-wal-dir", filepath.Join(dir, "w5")},
			"a coordinator has none"},
		{"wal-dir-is-a-file",
			[]string{"-snapshot", snap, "-wal-dir", plainFile},
			"write-ahead log"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(momentsdBin, append([]string{"-addr", "127.0.0.1:0"}, tc.args...)...).CombinedOutput()
			if err == nil {
				t.Fatalf("momentsd started despite %v:\n%s", tc.args, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("momentsd %v: output missing %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}
